// Shared-line coherence directory and interconnect bus.
//
// Named shared cache lines (locks, queue indices, volatile fields) go through
// a MESI-like directory: a store by core A to a line shared with core B sends
// B an invalidation (landing in B's invalidation queue), and a load of a line
// that another core holds modified pays a coherence-miss transfer over the
// bus.  The bus serialises transfers, so heavily contended runs also queue.
//
// The directory is an open-addressed hash table in struct-of-arrays layout:
// parallel key/owner/sharer columns indexed by the same slot, with inline
// storage for the first 64 lines so litmus- and workload-scale programs never
// touch the heap.  A store's invalidation targets come back as a core
// bitmask, which Machine::send_invalidations drains in one sweep — there is
// no per-message allocation anywhere on this path (docs/simulator.md,
// "Coherence directory").
//
// Bulk private traffic does not use the directory; it is modelled
// statistically in Cpu::private_access.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>

#include "sim/metrics.h"

namespace wmm::sim {

using LineId = std::uint64_t;

class Bus {
 public:
  // Reserve the bus for one transfer starting no earlier than `now`; returns
  // the time the transfer completes, including queueing behind earlier
  // transfers.
  //
  // Cores step with loosely synchronised local clocks, so reservations
  // arrive out of time order; a reservation stamped far ahead of the
  // requester (e.g. a store drain scheduled by a core whose clock has run
  // ahead) must not head-of-line-block everyone else.  Queueing is therefore
  // capped at a short horizon past the requester's clock — contention is
  // felt when the bus is genuinely saturated, not across clock skew.
  double reserve(double now, double transfer_ns) {
    reg_->add(ids_->bus_transactions);
    double start = busy_until_ > now ? busy_until_ : now;
    if (start > now + kQueueHorizonNs) start = now + kQueueHorizonNs;
    busy_until_ = start + transfer_ns;
    return busy_until_;
  }

  static constexpr double kQueueHorizonNs = 60.0;

  double busy_until() const { return busy_until_; }
  void reset() { busy_until_ = 0.0; }

 private:
  obs::CounterRegistry* reg_ = &obs::counters();
  const SimCounterIds* ids_ = &sim_counters();
  double busy_until_ = 0.0;
};

class CoherenceDirectory {
 public:
  CoherenceDirectory() { use_inline(); }

  // The active-column pointers alias the inline arrays, so the directory is
  // pinned in place (Machine never moves either).
  CoherenceDirectory(const CoherenceDirectory&) = delete;
  CoherenceDirectory& operator=(const CoherenceDirectory&) = delete;

  // Record a read by `core`: returns true when the access needs a line
  // transfer — either a coherence miss (the line is modified in another
  // core's cache) or a cold fill.  Updates sharer state.
  bool read(LineId id, int core) {
    const std::size_t s = slot_of(id);
    const bool miss = owner_[s] >= 0 && owner_[s] != core;
    if (miss) {
      reg_->add(ids_->coh_misses);
      // Owner's copy is downgraded to shared.
      sharers_[s] |= 1u << owner_[s];
      owner_[s] = -1;
    }
    const bool had_copy = (sharers_[s] >> core) & 1u;
    sharers_[s] |= 1u << core;
    return miss || !had_copy;
  }

  // Record a write by `core`: returns the bitmask of other cores that must be
  // sent an invalidation.  A non-zero mask means ownership had to be
  // transferred (line modified elsewhere or shared); zero means the writer
  // already owned the line exclusively.
  std::uint32_t write(LineId id, int core) {
    const std::size_t s = slot_of(id);
    std::uint32_t targets = sharers_[s];
    if (owner_[s] >= 0) targets |= 1u << owner_[s];
    targets &= ~(1u << core);
    owner_[s] = core;
    sharers_[s] = 1u << core;
    if (targets != 0) {
      reg_->add(ids_->coh_transfers);
      reg_->add(ids_->coh_invalidations,
                static_cast<std::uint64_t>(std::popcount(targets)));
    }
    return targets;
  }

  void reset() {
    heap_.reset();
    use_inline();
  }

  std::size_t tracked_lines() const { return count_; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  static constexpr std::size_t kInlineSlots = 64;  // power of two

  // Find-or-insert: linear probing over the key column; a fresh slot starts
  // clean and unshared, matching the old map's value-initialised LineState.
  std::size_t slot_of(LineId id) {
    std::size_t s = hash(id) & mask_;
    while (true) {
      if (!used_[s]) break;
      if (keys_[s] == id) return s;
      s = (s + 1) & mask_;
    }
    if (count_ * 10 >= (mask_ + 1) * 7) {
      grow();
      s = hash(id) & mask_;
      while (used_[s]) s = (s + 1) & mask_;
    }
    used_[s] = 1;
    keys_[s] = id;
    owner_[s] = -1;
    sharers_[s] = 0;
    ++count_;
    return s;
  }

  static std::size_t hash(LineId id) {
    // splitmix64 finaliser: line ids are often small consecutive integers.
    std::uint64_t h = id + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }

  void use_inline() {
    keys_ = inline_keys_;
    owner_ = inline_owner_;
    sharers_ = inline_sharers_;
    used_ = inline_used_;
    mask_ = kInlineSlots - 1;
    count_ = 0;
    std::memset(inline_used_, 0, sizeof(inline_used_));
  }

  void grow() {
    const std::size_t old_cap = mask_ + 1;
    const std::size_t cap = old_cap * 2;
    // One heap block, columns laid out back to back.
    const std::size_t bytes =
        cap * (sizeof(LineId) + sizeof(std::int32_t) + sizeof(std::uint32_t) +
               sizeof(std::uint8_t));
    auto block = std::make_unique<std::byte[]>(bytes);
    auto* keys = reinterpret_cast<LineId*>(block.get());
    auto* owner = reinterpret_cast<std::int32_t*>(keys + cap);
    auto* sharers = reinterpret_cast<std::uint32_t*>(owner + cap);
    auto* used = reinterpret_cast<std::uint8_t*>(sharers + cap);
    std::memset(used, 0, cap);
    const std::size_t new_mask = cap - 1;
    for (std::size_t s = 0; s < old_cap; ++s) {
      if (!used_[s]) continue;
      std::size_t d = hash(keys_[s]) & new_mask;
      while (used[d]) d = (d + 1) & new_mask;
      used[d] = 1;
      keys[d] = keys_[s];
      owner[d] = owner_[s];
      sharers[d] = sharers_[s];
    }
    heap_ = std::move(block);
    keys_ = keys;
    owner_ = owner;
    sharers_ = sharers;
    used_ = used;
    mask_ = new_mask;
  }

  obs::CounterRegistry* reg_ = &obs::counters();
  const SimCounterIds* ids_ = &sim_counters();

  // Active columns (inline or heap).
  LineId* keys_ = nullptr;
  std::int32_t* owner_ = nullptr;    // core holding the line modified; -1 clean
  std::uint32_t* sharers_ = nullptr; // bitmask of cores with a copy
  std::uint8_t* used_ = nullptr;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;

  LineId inline_keys_[kInlineSlots];
  std::int32_t inline_owner_[kInlineSlots];
  std::uint32_t inline_sharers_[kInlineSlots];
  std::uint8_t inline_used_[kInlineSlots];
  std::unique_ptr<std::byte[]> heap_;
};

}  // namespace wmm::sim
