// Shared-line coherence directory and interconnect bus.
//
// Named shared cache lines (locks, queue indices, volatile fields) go through
// a MESI-like directory: a store by core A to a line shared with core B sends
// B an invalidation (landing in B's invalidation queue), and a load of a line
// that another core holds modified pays a coherence-miss transfer over the
// bus.  The bus serialises transfers, so heavily contended runs also queue.
//
// Bulk private traffic does not use the directory; it is modelled
// statistically in Cpu::private_access.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/metrics.h"

namespace wmm::sim {

using LineId = std::uint64_t;

class Bus {
 public:
  // Reserve the bus for one transfer starting no earlier than `now`; returns
  // the time the transfer completes, including queueing behind earlier
  // transfers.
  //
  // Cores step with loosely synchronised local clocks, so reservations
  // arrive out of time order; a reservation stamped far ahead of the
  // requester (e.g. a store drain scheduled by a core whose clock has run
  // ahead) must not head-of-line-block everyone else.  Queueing is therefore
  // capped at a short horizon past the requester's clock — contention is
  // felt when the bus is genuinely saturated, not across clock skew.
  double reserve(double now, double transfer_ns) {
    reg_->add(ids_->bus_transactions);
    double start = busy_until_ > now ? busy_until_ : now;
    if (start > now + kQueueHorizonNs) start = now + kQueueHorizonNs;
    busy_until_ = start + transfer_ns;
    return busy_until_;
  }

  static constexpr double kQueueHorizonNs = 60.0;

  double busy_until() const { return busy_until_; }
  void reset() { busy_until_ = 0.0; }

 private:
  obs::CounterRegistry* reg_ = &obs::counters();
  const SimCounterIds* ids_ = &sim_counters();
  double busy_until_ = 0.0;
};

// Directory state for one shared line.
struct LineState {
  int owner = -1;            // core holding the line modified; -1 = clean
  std::uint32_t sharers = 0; // bitmask of cores with a (possibly stale) copy
};

class CoherenceDirectory {
 public:
  LineState& line(LineId id) { return lines_[id]; }

  // Record a read by `core`: returns true when the access is a coherence miss
  // (the line is modified in another core's cache).  Updates sharer state.
  bool read(LineId id, int core) {
    LineState& l = lines_[id];
    const bool miss = l.owner >= 0 && l.owner != core;
    if (miss) {
      reg_->add(ids_->coh_misses);
      // Owner's copy is downgraded to shared.
      l.sharers |= (1u << l.owner);
      l.owner = -1;
    }
    const bool had_copy = (l.sharers >> core) & 1u;
    l.sharers |= (1u << core);
    return miss || !had_copy;
  }

  // Record a write by `core`: fills `invalidated` with the other cores that
  // must be sent an invalidation and returns true when ownership had to be
  // transferred (line modified elsewhere or shared).
  bool write(LineId id, int core, std::vector<int>& invalidated) {
    LineState& l = lines_[id];
    invalidated.clear();
    bool transfer = false;
    if (l.owner >= 0 && l.owner != core) {
      invalidated.push_back(l.owner);
      transfer = true;
    }
    const std::uint32_t others = l.sharers & ~(1u << core);
    for (int c = 0; c < 32; ++c) {
      if ((others >> c) & 1u) {
        if (l.owner != c) invalidated.push_back(c);
        transfer = true;
      }
    }
    l.owner = core;
    l.sharers = (1u << core);
    if (transfer) {
      reg_->add(ids_->coh_transfers);
      reg_->add(ids_->coh_invalidations, invalidated.size());
    }
    return transfer;
  }

  void reset() { lines_.clear(); }
  std::size_t tracked_lines() const { return lines_.size(); }

 private:
  obs::CounterRegistry* reg_ = &obs::counters();
  const SimCounterIds* ids_ = &sim_counters();
  std::unordered_map<LineId, LineState> lines_;
};

}  // namespace wmm::sim
