#include "sim/memory_model.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/profile.h"
#include "sim/enum_arena.h"

namespace wmm::sim {

namespace {

bool is_access(const LitmusInstr& in) { return in.type != AccessType::Fence; }
bool is_read(const LitmusInstr& in) { return in.type == AccessType::Read; }
bool is_write(const LitmusInstr& in) { return in.type == AccessType::Write; }

// Full barriers are modelled as nodes in the commit order (they genuinely
// order everything on both sides); weaker fences only constrain specific
// access-class pairs and must not appear as nodes, or transitivity through
// the node would forbid reorderings the fence permits (e.g. store->load
// across an lwsync).
bool is_full_barrier(FenceKind kind) { return fence_order(kind).full(); }

// Does instruction `j` depend on a register produced by read `i`?
bool depends_on(const LitmusInstr& i, const LitmusInstr& j, bool& write_only) {
  write_only = false;
  if (!is_read(i) || i.reg < 0) return false;
  if (j.addr_dep == i.reg || j.data_dep == i.reg) return true;
  if (j.ctrl_dep == i.reg) {
    // A bare control dependency orders the read only with dependent *writes*
    // (reads may still be speculated past the branch without isb).
    write_only = true;
    return true;
  }
  return false;
}

}  // namespace

bool allows_early_forwarding(Arch arch) { return arch == Arch::POWER7; }

bool must_commit_in_order(const LitmusThread& thread, std::size_t i,
                          std::size_t j, Arch arch) {
  if (i >= j || j >= thread.instrs.size()) return false;
  const LitmusInstr& a = thread.instrs[i];
  const LitmusInstr& b = thread.instrs[j];

  // Full-barrier fence nodes order with everything on the same thread.
  if (!is_access(a) || !is_access(b)) {
    const bool a_full = !is_access(a) && is_full_barrier(a.fence);
    const bool b_full = !is_access(b) && is_full_barrier(b.fence);
    return a_full || b_full || (!is_access(a) && !is_access(b));
  }

  if (arch == Arch::SC) return true;

  // Per-location coherence: same-variable accesses stay in program order.
  if (a.var >= 0 && a.var == b.var) return true;

  // Dependencies.
  bool write_only = false;
  if (depends_on(a, b, write_only)) {
    if (!write_only || is_write(b)) return true;
  }

  // Acquire/release flags.
  if (a.acquire && is_read(a)) return true;
  if (b.release && is_write(b)) return true;
  if (a.release && b.acquire) return true;  // stlr ; ldar (RCsc)

  if (arch == Arch::X86_TSO) {
    // TSO: everything ordered except write -> later read.
    if (!(is_write(a) && is_read(b))) return true;
  }

  // Fences strictly between a and b in program order.
  for (std::size_t f = i + 1; f < j; ++f) {
    const LitmusInstr& fence = thread.instrs[f];
    if (is_access(fence)) continue;
    const FenceOrder order = fence_order(fence.fence);
    const bool first_read = is_read(a);
    const bool second_read = is_read(b);
    const bool covered = first_read ? (second_read ? order.rr : order.rw)
                                    : (second_read ? order.wr : order.ww);
    if (covered) return true;
  }
  return false;
}

namespace {

constexpr int kNever = 1 << 28;

// Precomputed per-event commit behaviour (SoA columns over flat event ids).
enum : std::uint8_t {
  kEvWrite = 0,
  kEvRead = 1,
  kEvFenceFull = 2,   // full barrier: cumulative push + catch-up on POWER
  kEvFenceOther = 3,  // commit-order node with no commit-time effect (lwsync)
};

// The per-thread enumeration workspace: one arena reused across calls plus a
// running enumeration count.  Thread-local so concurrent par_map workers
// never share mutable state; nothing here touches the obs counter registry.
struct EnumWorkspace {
  static constexpr std::size_t kInlineBytes = 64 * 1024;
  alignas(64) std::byte inline_chunk[kInlineBytes];
  Arena arena{inline_chunk, kInlineBytes};
  std::uint64_t enumerations = 0;
};

EnumWorkspace& workspace() {
  thread_local EnumWorkspace ws;
  return ws;
}

// Every column the step loop touches, allocated out of the arena up-front so
// the per-interleaving path performs no allocation at all.  Integer columns
// throughout: the executor never chases a pointer into LitmusInstr on the
// hot path.
struct Enumeration {
  const LitmusTest* test = nullptr;
  bool forwarding = false;
  Arena* arena = nullptr;

  int T = 0;  // threads
  int V = 0;  // shared variables
  int R = 0;  // registers
  int L = 0;  // outcome width = R + V
  int E = 0;  // total instruction events

  // Flat event columns; event id = thread_base[t] + instruction index.
  int* thread_base = nullptr;
  std::uint8_t* ev_kind = nullptr;
  int* ev_tid = nullptr;
  int* ev_var = nullptr;
  int* ev_val = nullptr;
  int* ev_reg = nullptr;
  std::uint8_t* ev_push = nullptr;  // write triggers a cumulativity push
  int* ev_delay_base = nullptr;     // write -> first delay-slot bit, -1 none
  int delay_bits = 0;

  // Per-thread commit orders, flattened: thread t owns order_count[t]
  // sequences of order_len[t] flat event ids each, stored back to back in
  // order_pool starting at order_base[t].
  int* order_len = nullptr;
  std::size_t* order_base = nullptr;
  std::size_t* order_count = nullptr;
  ArenaVec<int> order_pool;

  // Execution scratch, capacities fixed before the product loop starts.
  int* seq = nullptr;            // current global commit sequence
  int* regs = nullptr;           // R (zeroed once: every leaf writes the
                                 // same register set)
  std::int32_t* outcome = nullptr;  // L packing scratch

  // Non-forwarding fast path: last committed write per variable.
  int* var_val = nullptr;           // V
  std::uint8_t* var_has = nullptr;  // V

  // Forwarding (POWER) path: committed-write columns, capacity E.
  int* w_pos = nullptr;
  int* w_tid = nullptr;
  int* w_var = nullptr;
  int* w_val = nullptr;
  int* w_prev = nullptr;     // previous write to the same variable
  int* w_visfrom = nullptr;  // [write * T + reader], stride T
  int* var_last = nullptr;   // V: latest write per variable, -1 none
  int* obs_pool = nullptr;   // per-thread observed-write lists, capacity E
  int* obs_base = nullptr;   // T
  int* obs_count = nullptr;  // T
  int* seen_floor = nullptr;  // [tid * V + var] coherence floor
  std::uint32_t delay_mask = 0;

  PackedOutcomeSet outcomes;
};

// Linear extensions of one thread's commit DAG, emitted into the flat order
// pool.  `pred[k]` is node k's predecessor bitmask, so per-step readiness is
// one mask intersection; bits are visited in ascending node order, which
// fixes the emission order deterministically (docs/simulator.md,
// "Enumeration order").
void emit_linear_extensions(const int* nodes, const std::uint64_t* pred,
                            std::size_t n, std::uint64_t done, int* current,
                            std::size_t depth, Arena& arena,
                            ArenaVec<int>& pool, std::size_t& count) {
  if (depth == n) {
    for (std::size_t i = 0; i < n; ++i) pool.push_back(arena, current[i]);
    ++count;
    return;
  }
  const std::uint64_t all = n >= 64 ? ~0ULL : ((1ULL << n) - 1ULL);
  for (std::uint64_t avail = all & ~done; avail != 0; avail &= avail - 1) {
    const int k = __builtin_ctzll(avail);
    if ((pred[static_cast<std::size_t>(k)] & ~done) != 0) continue;
    current[depth] = nodes[k];
    emit_linear_extensions(nodes, pred, n, done | (1ULL << k), current,
                           depth + 1, arena, pool, count);
  }
}

// Commit-order nodes and edges for thread `t`, then all linear extensions
// into the shared pool.
void build_thread_orders(Enumeration& en, int t, Arch arch) {
  const LitmusThread& thread = en.test->threads[static_cast<std::size_t>(t)];
  Arena& arena = *en.arena;

  int node_instr[64];
  int nodes[64];
  std::size_t n = 0;
  for (std::size_t i = 0; i < thread.instrs.size(); ++i) {
    const LitmusInstr& in = thread.instrs[i];
    if (is_access(in) || is_full_barrier(in.fence) ||
        in.fence == FenceKind::LwSync) {
      // lwsync nodes are needed in the sequence for cumulativity timing even
      // though they do not constrain all pairs; they get only the edges that
      // its ordering classes justify — see the edge loop below.
      if (n >= 64) {
        throw std::invalid_argument(
            "litmus thread too large for commit-order masks");
      }
      node_instr[n] = static_cast<int>(i);
      nodes[n] = en.thread_base[t] + static_cast<int>(i);
      ++n;
    }
  }

  // pred[b] bit a set <=> node a must commit before node b.
  std::uint64_t pred[64];
  std::memset(pred, 0, n * sizeof(std::uint64_t));
  const auto add_edge = [&pred](std::size_t a, std::size_t b) {
    pred[b] |= 1ULL << a;
  };
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const std::size_t i = static_cast<std::size_t>(node_instr[a]);
      const std::size_t j = static_cast<std::size_t>(node_instr[b]);
      const LitmusInstr& ii = thread.instrs[i];
      const LitmusInstr& jj = thread.instrs[j];
      // lwsync nodes float freely except against full barriers (handled by
      // must_commit_in_order's fence-node branch treating them as non-full).
      const bool i_lw = !is_access(ii) && ii.fence == FenceKind::LwSync;
      const bool j_lw = !is_access(jj) && jj.fence == FenceKind::LwSync;
      if (i_lw || j_lw) {
        // Keeping an lwsync ordered against *everything* is too strong;
        // instead keep it merely after prior accesses and before later
        // writes, which matches its cumulativity trigger without
        // constraining the store->load pairs it permits to reorder.
        if (i_lw && !j_lw) {
          if (is_write(jj)) add_edge(a, b);  // lwsync before later writes
        } else if (j_lw && !i_lw) {
          if (is_read(ii)) add_edge(a, b);   // prior reads before lwsync
          if (is_write(ii)) add_edge(a, b);  // prior writes before lwsync
        } else {
          add_edge(a, b);  // fence-fence in order
        }
        continue;
      }
      if (must_commit_in_order(thread, i, j, arch)) add_edge(a, b);
    }
  }

  en.order_len[t] = static_cast<int>(n);
  en.order_base[t] = en.order_pool.size();
  std::size_t count = 0;
  int current[64];
  emit_linear_extensions(nodes, pred, n, 0, current, 0, arena, en.order_pool,
                         count);
  en.order_count[t] = count;
}

// Pack and deduplicate the final state: registers, then the coherence-latest
// value of each variable.
inline void record_outcome_tail_fast(Enumeration& en) {
  for (int v = 0; v < en.V; ++v) {
    en.outcome[en.R + v] = en.var_has[v] ? en.var_val[v] : 0;
  }
}

// One interleaving under the non-forwarding semantics (SC / TSO / ARMv8):
// a committed write is immediately visible to every thread, so a read
// returns the latest committed write to its variable and the visibility,
// observed-set, and coherence-floor machinery all collapse away.
void execute_fast(Enumeration& en, int seq_len) {
  std::memset(en.var_has, 0, static_cast<std::size_t>(en.V));
  for (int pos = 0; pos < seq_len; ++pos) {
    const int e = en.seq[pos];
    const std::uint8_t kind = en.ev_kind[e];
    if (kind == kEvWrite) {
      const int v = en.ev_var[e];
      en.var_val[v] = en.ev_val[e];
      en.var_has[v] = 1;
    } else if (kind == kEvRead) {
      const int v = en.ev_var[e];
      const int r = en.ev_reg[e];
      if (r >= 0) en.regs[r] = en.var_has[v] ? en.var_val[v] : 0;
    }
  }
  for (int r = 0; r < en.R; ++r) en.outcome[r] = en.regs[r];
  record_outcome_tail_fast(en);
  en.outcomes.insert(en.outcome);
}

// One interleaving under the forwarding semantics (POWER): per-write
// visibility columns with delay choices, cumulative pushes at WW-ordering
// barriers, and full-barrier catch-up — the exact semantics of the previous
// implementation over SoA columns.  Reads walk the per-variable write chain
// newest-first, so the first visible-or-floored write IS the coherence-latest
// candidate.
void execute_forwarding(Enumeration& en, int seq_len) {
  const int T = en.T;
  const int V = en.V;
  int nw = 0;
  std::memset(en.var_last, 0xFF, static_cast<std::size_t>(V) * sizeof(int));
  std::memset(en.seen_floor, 0xFF,
              static_cast<std::size_t>(T) * static_cast<std::size_t>(V) *
                  sizeof(int));
  std::memset(en.obs_count, 0, static_cast<std::size_t>(T) * sizeof(int));

  for (int pos = 0; pos < seq_len; ++pos) {
    const int e = en.seq[pos];
    const int tid = en.ev_tid[e];
    switch (en.ev_kind[e]) {
      case kEvWrite: {
        const int v = en.ev_var[e];
        const int wi = nw++;
        en.w_pos[wi] = pos;
        en.w_tid[wi] = tid;
        en.w_var[wi] = v;
        en.w_val[wi] = en.ev_val[e];
        int* vf = en.w_visfrom + static_cast<std::size_t>(wi) * T;
        for (int r = 0; r < T; ++r) vf[r] = pos;
        if (const int db = en.ev_delay_base[e]; db >= 0) {
          // Delay choices: visibility to reader r withheld until a push or
          // catch-up (early forwarding to everyone else).
          int off = 0;
          for (int r = 0; r < T; ++r) {
            if (r == tid) continue;
            if ((en.delay_mask >> (db + off)) & 1u) vf[r] = kNever;
            ++off;
          }
        }
        en.w_prev[wi] = en.var_last[v];
        en.var_last[v] = wi;
        en.obs_pool[en.obs_base[tid] + en.obs_count[tid]++] = wi;
        if (en.ev_push[e]) {
          // Cumulativity: writes this thread had observed before a
          // WW-ordering fence (or this release store) propagate everywhere
          // no later than this commit.
          const int* items = en.obs_pool + en.obs_base[tid];
          const int cnt = en.obs_count[tid];
          for (int i = 0; i < cnt; ++i) {
            int* vfo = en.w_visfrom + static_cast<std::size_t>(items[i]) * T;
            for (int r = 0; r < T; ++r) {
              if (pos < vfo[r]) vfo[r] = pos;
            }
          }
        }
        break;
      }
      case kEvRead: {
        const int v = en.ev_var[e];
        const int floor = en.seen_floor[tid * V + v];
        int best = -1;
        for (int wi = en.var_last[v]; wi >= 0; wi = en.w_prev[wi]) {
          const bool visible =
              en.w_tid[wi] == tid ||
              en.w_visfrom[static_cast<std::size_t>(wi) * T + tid] <= pos;
          if (visible || en.w_pos[wi] <= floor) {
            best = wi;
            break;
          }
        }
        int value = 0;
        if (best >= 0) {
          value = en.w_val[best];
          if (en.w_pos[best] > floor) en.seen_floor[tid * V + v] = en.w_pos[best];
          en.obs_pool[en.obs_base[tid] + en.obs_count[tid]++] = best;
        }
        if (en.ev_reg[e] >= 0) en.regs[en.ev_reg[e]] = value;
        break;
      }
      case kEvFenceFull: {
        // Full barrier: cumulative group-A push of the thread's observed
        // writes to everyone, then catch-up of this thread on everything
        // committed so far (sync / dmb ish / mfence semantics).
        const int* items = en.obs_pool + en.obs_base[tid];
        const int cnt = en.obs_count[tid];
        for (int i = 0; i < cnt; ++i) {
          int* vfo = en.w_visfrom + static_cast<std::size_t>(items[i]) * T;
          for (int r = 0; r < T; ++r) {
            if (pos < vfo[r]) vfo[r] = pos;
          }
        }
        for (int wi = 0; wi < nw; ++wi) {
          int& x = en.w_visfrom[static_cast<std::size_t>(wi) * T + tid];
          if (pos < x) x = pos;
        }
        break;
      }
      default:
        break;  // weak fence node: no commit-time effect
    }
  }

  for (int r = 0; r < en.R; ++r) en.outcome[r] = en.regs[r];
  for (int v = 0; v < V; ++v) {
    const int wi = en.var_last[v];
    en.outcome[en.R + v] = wi >= 0 ? en.w_val[wi] : 0;
  }
  en.outcomes.insert(en.outcome);
}

void execute_with_delays(Enumeration& en, int seq_len) {
  if (!en.forwarding) {
    execute_fast(en, seq_len);
    return;
  }
  if (en.delay_bits == 0) {
    en.delay_mask = 0;
    execute_forwarding(en, seq_len);
    return;
  }
  for (std::uint64_t mask = 0; mask < (1ULL << en.delay_bits); ++mask) {
    en.delay_mask = static_cast<std::uint32_t>(mask);
    execute_forwarding(en, seq_len);
  }
}

void interleave(Enumeration& en, const int* const* chosen,
                const int* chosen_len, int* cursor, int depth) {
  bool done = true;
  for (int t = 0; t < en.T; ++t) {
    if (cursor[t] < chosen_len[t]) {
      done = false;
      en.seq[depth] = chosen[t][cursor[t]];
      ++cursor[t];
      interleave(en, chosen, chosen_len, cursor, depth + 1);
      --cursor[t];
    }
  }
  if (done) execute_with_delays(en, depth);
}

}  // namespace

std::set<Outcome> enumerate_outcomes(const LitmusTest& test, Arch arch) {
  WMM_PROFILE_SPAN(obs::Phase::OpEnumerate);
  EnumWorkspace& ws = workspace();
  Arena& arena = ws.arena;
  ++ws.enumerations;
  // Reclaim the cycle on every exit path (including the too-large throws) so
  // the arena's next cycle starts clean.
  struct CycleGuard {
    Arena& a;
    ~CycleGuard() { a.reset(); }
  } guard{arena};

  Enumeration en;
  en.test = &test;
  en.forwarding = allows_early_forwarding(arch);
  en.arena = &arena;
  en.T = static_cast<int>(test.threads.size());
  en.V = test.num_vars;
  en.R = test.num_regs;
  en.L = en.R + en.V;

  // --- Flat event columns ---------------------------------------------------
  en.thread_base = arena.alloc<int>(static_cast<std::size_t>(en.T) + 1);
  int total = 0;
  for (int t = 0; t < en.T; ++t) {
    en.thread_base[t] = total;
    total += static_cast<int>(
        test.threads[static_cast<std::size_t>(t)].instrs.size());
  }
  en.thread_base[en.T] = total;
  en.E = total;

  const std::size_t ecount = static_cast<std::size_t>(en.E ? en.E : 1);
  en.ev_kind = arena.alloc<std::uint8_t>(ecount);
  en.ev_tid = arena.alloc<int>(ecount);
  en.ev_var = arena.alloc<int>(ecount);
  en.ev_val = arena.alloc<int>(ecount);
  en.ev_reg = arena.alloc<int>(ecount);
  en.ev_push = arena.alloc<std::uint8_t>(ecount);
  en.ev_delay_base = arena.alloc<int>(ecount);

  for (int t = 0; t < en.T; ++t) {
    const auto& instrs = test.threads[static_cast<std::size_t>(t)].instrs;
    bool ww_fence_seen = false;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const LitmusInstr& in = instrs[i];
      const int e = en.thread_base[t] + static_cast<int>(i);
      en.ev_tid[e] = t;
      en.ev_var[e] = in.var;
      en.ev_val[e] = in.value;
      en.ev_reg[e] = in.reg;
      en.ev_delay_base[e] = -1;
      if (is_write(in)) {
        en.ev_kind[e] = kEvWrite;
        // Cumulativity trigger: this write commits after every group-A
        // access of any WW-ordering fence that program-precedes it; a
        // release store is itself cumulative the same way.
        en.ev_push[e] = (in.release || ww_fence_seen) ? 1 : 0;
      } else if (is_read(in)) {
        en.ev_kind[e] = kEvRead;
        en.ev_push[e] = 0;
      } else {
        en.ev_kind[e] = is_full_barrier(in.fence) ? kEvFenceFull : kEvFenceOther;
        en.ev_push[e] = 0;
        if (fence_order(in.fence).ww) ww_fence_seen = true;
      }
    }
  }

  // --- Delay slots (POWER early forwarding) ---------------------------------
  if (en.forwarding && en.T > 1) {
    int bits = 0;
    for (int t = 0; t < en.T; ++t) {
      const auto& instrs = test.threads[static_cast<std::size_t>(t)].instrs;
      for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (!is_write(instrs[i])) continue;
        const int e = en.thread_base[t] + static_cast<int>(i);
        en.ev_delay_base[e] = bits;
        bits += en.T - 1;
      }
    }
    if (bits > 20) {
      throw std::invalid_argument("litmus test too large for delay enumeration");
    }
    en.delay_bits = bits;
  }

  // --- Per-thread commit orders --------------------------------------------
  en.order_len = arena.alloc<int>(static_cast<std::size_t>(en.T ? en.T : 1));
  en.order_base =
      arena.alloc<std::size_t>(static_cast<std::size_t>(en.T ? en.T : 1));
  en.order_count =
      arena.alloc<std::size_t>(static_cast<std::size_t>(en.T ? en.T : 1));
  en.order_pool.init(arena, 256);
  int seq_cap = 0;
  for (int t = 0; t < en.T; ++t) {
    build_thread_orders(en, t, arch);
    seq_cap += en.order_len[t];
  }

  // --- Execution scratch ----------------------------------------------------
  en.seq = arena.alloc<int>(static_cast<std::size_t>(seq_cap ? seq_cap : 1));
  en.regs = arena.alloc_zero<int>(static_cast<std::size_t>(en.R ? en.R : 1));
  en.outcome =
      arena.alloc<std::int32_t>(static_cast<std::size_t>(en.L ? en.L : 1));
  const std::size_t vcount = static_cast<std::size_t>(en.V ? en.V : 1);
  en.var_val = arena.alloc<int>(vcount);
  en.var_has = arena.alloc<std::uint8_t>(vcount);
  if (en.forwarding) {
    en.w_pos = arena.alloc<int>(ecount);
    en.w_tid = arena.alloc<int>(ecount);
    en.w_var = arena.alloc<int>(ecount);
    en.w_val = arena.alloc<int>(ecount);
    en.w_prev = arena.alloc<int>(ecount);
    en.w_visfrom = arena.alloc<int>(ecount * static_cast<std::size_t>(en.T));
    en.var_last = arena.alloc<int>(vcount);
    en.obs_pool = arena.alloc<int>(ecount);
    en.obs_base = arena.alloc<int>(static_cast<std::size_t>(en.T));
    en.obs_count = arena.alloc<int>(static_cast<std::size_t>(en.T));
    for (int t = 0; t < en.T; ++t) en.obs_base[t] = en.thread_base[t];
    en.seen_floor =
        arena.alloc<int>(static_cast<std::size_t>(en.T) * vcount);
  }
  en.outcomes.init(arena, static_cast<std::uint32_t>(en.L));

  // --- Cartesian product of per-thread commit orders, then interleavings ---
  const std::size_t tcount = static_cast<std::size_t>(en.T ? en.T : 1);
  const int** chosen = arena.alloc<const int*>(tcount);
  int* chosen_len = arena.alloc<int>(tcount);
  int* cursor = arena.alloc<int>(tcount);
  std::size_t* pick = arena.alloc_zero<std::size_t>(tcount);
  while (true) {
    for (int t = 0; t < en.T; ++t) {
      chosen[t] = en.order_pool.data() + en.order_base[t] +
                  pick[t] * static_cast<std::size_t>(en.order_len[t]);
      chosen_len[t] = en.order_len[t];
      cursor[t] = 0;
    }
    interleave(en, chosen, chosen_len, cursor, 0);

    // Advance the product counter.
    int t = 0;
    for (; t < en.T; ++t) {
      if (++pick[t] < en.order_count[t]) break;
      pick[t] = 0;
    }
    if (t == en.T) break;
  }

  // Unpack the deduplicated outcomes into the caller-facing sorted set (cold
  // path: one node per *distinct* outcome, not per interleaving).
  std::set<Outcome> outcomes;
  for (std::uint32_t i = 0; i < en.outcomes.size(); ++i) {
    const std::int32_t* v = en.outcomes.entry(i);
    outcomes.insert(Outcome(v, v + en.L));
  }
  return outcomes;
}

EnumArenaStats enumeration_arena_stats() {
  const EnumWorkspace& ws = workspace();
  const ArenaStats s = ws.arena.stats();
  EnumArenaStats out;
  out.reserved_bytes = s.reserved_bytes;
  out.high_water_bytes = s.high_water_bytes;
  out.enumerations = ws.enumerations;
  return out;
}

}  // namespace wmm::sim
