#include "sim/memory_model.h"

#include <algorithm>
#include <stdexcept>

#include "obs/profile.h"

namespace wmm::sim {

namespace {

bool is_access(const LitmusInstr& in) { return in.type != AccessType::Fence; }
bool is_read(const LitmusInstr& in) { return in.type == AccessType::Read; }
bool is_write(const LitmusInstr& in) { return in.type == AccessType::Write; }

// Full barriers are modelled as nodes in the commit order (they genuinely
// order everything on both sides); weaker fences only constrain specific
// access-class pairs and must not appear as nodes, or transitivity through
// the node would forbid reorderings the fence permits (e.g. store->load
// across an lwsync).
bool is_full_barrier(FenceKind kind) { return fence_order(kind).full(); }

// Does instruction `j` depend on a register produced by read `i`?
bool depends_on(const LitmusInstr& i, const LitmusInstr& j, bool& write_only) {
  write_only = false;
  if (!is_read(i) || i.reg < 0) return false;
  if (j.addr_dep == i.reg || j.data_dep == i.reg) return true;
  if (j.ctrl_dep == i.reg) {
    // A bare control dependency orders the read only with dependent *writes*
    // (reads may still be speculated past the branch without isb).
    write_only = true;
    return true;
  }
  return false;
}

}  // namespace

bool allows_early_forwarding(Arch arch) { return arch == Arch::POWER7; }

bool must_commit_in_order(const LitmusThread& thread, std::size_t i,
                          std::size_t j, Arch arch) {
  if (i >= j || j >= thread.instrs.size()) return false;
  const LitmusInstr& a = thread.instrs[i];
  const LitmusInstr& b = thread.instrs[j];

  // Full-barrier fence nodes order with everything on the same thread.
  if (!is_access(a) || !is_access(b)) {
    const bool a_full = !is_access(a) && is_full_barrier(a.fence);
    const bool b_full = !is_access(b) && is_full_barrier(b.fence);
    return a_full || b_full || (!is_access(a) && !is_access(b));
  }

  if (arch == Arch::SC) return true;

  // Per-location coherence: same-variable accesses stay in program order.
  if (a.var >= 0 && a.var == b.var) return true;

  // Dependencies.
  bool write_only = false;
  if (depends_on(a, b, write_only)) {
    if (!write_only || is_write(b)) return true;
  }

  // Acquire/release flags.
  if (a.acquire && is_read(a)) return true;
  if (b.release && is_write(b)) return true;
  if (a.release && b.acquire) return true;  // stlr ; ldar (RCsc)

  if (arch == Arch::X86_TSO) {
    // TSO: everything ordered except write -> later read.
    if (!(is_write(a) && is_read(b))) return true;
  }

  // Fences strictly between a and b in program order.
  for (std::size_t f = i + 1; f < j; ++f) {
    const LitmusInstr& fence = thread.instrs[f];
    if (is_access(fence)) continue;
    const FenceOrder order = fence_order(fence.fence);
    const bool first_read = is_read(a);
    const bool second_read = is_read(b);
    const bool covered = first_read ? (second_read ? order.rr : order.rw)
                                    : (second_read ? order.wr : order.ww);
    if (covered) return true;
  }
  return false;
}

namespace {

// Identifier of one instruction in the global sequence.
struct EventRef {
  int tid;
  int idx;  // instruction index within the thread
};

struct ThreadOrders {
  // Node list: indices of instructions that participate in the commit order
  // (accesses + full-barrier fences).
  std::vector<int> nodes;
  // All valid commit orders, as sequences of instruction indices.
  std::vector<std::vector<int>> orders;
};

// Linear extensions of the per-thread commit DAG.  `pred[k]` holds the
// predecessor set of node k as a bitmask, so the per-step readiness test is a
// single mask intersection against the `done` set instead of rescanning every
// still-unplaced node.  Bits are visited in ascending node order, preserving
// the enumeration order of the previous O(n²)-per-step implementation.
void enumerate_linear_extensions(const std::vector<int>& nodes,
                                 const std::vector<std::uint64_t>& pred,
                                 std::uint64_t done, std::vector<int>& current,
                                 std::vector<std::vector<int>>& out) {
  const std::size_t n = nodes.size();
  if (current.size() == n) {
    out.push_back(current);
    return;
  }
  const std::uint64_t all = n >= 64 ? ~0ULL : ((1ULL << n) - 1ULL);
  for (std::uint64_t avail = all & ~done; avail != 0; avail &= avail - 1) {
    const int k = __builtin_ctzll(avail);
    if ((pred[static_cast<std::size_t>(k)] & ~done) != 0) continue;
    current.push_back(nodes[static_cast<std::size_t>(k)]);
    enumerate_linear_extensions(nodes, pred, done | (1ULL << k), current, out);
    current.pop_back();
  }
}

ThreadOrders thread_orders(const LitmusThread& thread, Arch arch) {
  ThreadOrders result;
  for (std::size_t i = 0; i < thread.instrs.size(); ++i) {
    const LitmusInstr& in = thread.instrs[i];
    if (is_access(in) || is_full_barrier(in.fence) ||
        in.fence == FenceKind::LwSync) {
      // lwsync nodes are needed in the sequence for cumulativity timing even
      // though they do not constrain all pairs; they get only the edges that
      // its ordering classes justify (reads/writes before it commit first
      // when the class is ordered with *anything*) — but to avoid transitive
      // overconstraint we add no edges for it at all and instead let the
      // executor trigger its cumulativity at the first post-fence write
      // (which IS ordered after group A).  So: node without edges.
      result.nodes.push_back(static_cast<int>(i));
    }
  }
  const std::size_t n = result.nodes.size();
  if (n > 64) {
    throw std::invalid_argument("litmus thread too large for commit-order masks");
  }
  // pred[b] bit a set <=> node a must commit before node b.
  std::vector<std::uint64_t> pred(n, 0);
  const auto add_edge = [&pred](std::size_t a, std::size_t b) {
    pred[b] |= 1ULL << a;
  };
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const std::size_t i = static_cast<std::size_t>(result.nodes[a]);
      const std::size_t j = static_cast<std::size_t>(result.nodes[b]);
      const LitmusInstr& ii = thread.instrs[i];
      const LitmusInstr& jj = thread.instrs[j];
      // lwsync nodes float freely except against full barriers (handled by
      // must_commit_in_order's fence-node branch treating them as non-full).
      const bool i_lw = !is_access(ii) && ii.fence == FenceKind::LwSync;
      const bool j_lw = !is_access(jj) && jj.fence == FenceKind::LwSync;
      if (i_lw || j_lw) {
        // Keep an lwsync after the accesses of its group A that it orders
        // against *everything* is too strong; instead keep it merely after
        // prior reads (rw+rr cover reads) and before later writes (ww+rw),
        // which matches its cumulativity trigger without constraining the
        // store->load pairs it permits to reorder.
        if (i_lw && !j_lw) {
          if (is_write(jj)) add_edge(a, b);  // lwsync before later writes
        } else if (j_lw && !i_lw) {
          if (is_read(ii)) add_edge(a, b);   // prior reads before lwsync
          if (is_write(ii)) add_edge(a, b);  // prior writes before lwsync
        } else {
          add_edge(a, b);  // fence-fence in order
        }
        continue;
      }
      if (must_commit_in_order(thread, i, j, arch)) add_edge(a, b);
    }
  }
  std::vector<int> current;
  enumerate_linear_extensions(result.nodes, pred, 0, current, result.orders);
  return result;
}

struct Execution {
  const LitmusTest* test;
  Arch arch;
  bool forwarding;

  // The global commit sequence being executed.
  std::vector<EventRef> sequence;

  // Delay choices: for each (write-event, reader-thread), true = visibility
  // delayed until pushed/caught-up.  Indexed via delay_index.
  std::vector<std::pair<EventRef, int>> delay_slots;  // (write, reader tid)
  std::vector<bool> delays;

  std::set<Outcome>* outcomes;
};

struct CommittedWrite {
  int pos;      // position in the global sequence (coherence order proxy)
  int tid;
  int var;
  int value;
  // visible_from[r]: earliest position from which reader r sees this write.
  std::vector<int> visible_from;
};

constexpr int kNever = 1 << 28;

void execute_sequence(Execution& ex) {
  const LitmusTest& test = *ex.test;
  const int num_threads = static_cast<int>(test.threads.size());

  std::vector<int> regs(static_cast<std::size_t>(test.num_regs), 0);
  std::vector<CommittedWrite> writes;
  // Writes observed by each thread (indices into `writes`), including its own.
  std::vector<std::vector<int>> observed(static_cast<std::size_t>(num_threads));
  // Coherence floor: latest write position already read per (thread, var).
  std::vector<std::vector<int>> seen_floor(
      static_cast<std::size_t>(num_threads),
      std::vector<int>(static_cast<std::size_t>(test.num_vars), -1));

  auto delay_of = [&](int write_tid, int write_idx, int reader) -> bool {
    for (std::size_t s = 0; s < ex.delay_slots.size(); ++s) {
      if (ex.delay_slots[s].first.tid == write_tid &&
          ex.delay_slots[s].first.idx == write_idx &&
          ex.delay_slots[s].second == reader) {
        return ex.delays[s];
      }
    }
    return false;
  };

  for (int pos = 0; pos < static_cast<int>(ex.sequence.size()); ++pos) {
    const EventRef ev = ex.sequence[static_cast<std::size_t>(pos)];
    const LitmusInstr& in =
        test.threads[static_cast<std::size_t>(ev.tid)].instrs[static_cast<std::size_t>(ev.idx)];

    if (is_write(in)) {
      CommittedWrite w;
      w.pos = pos;
      w.tid = ev.tid;
      w.var = in.var;
      w.value = in.value;
      w.visible_from.assign(static_cast<std::size_t>(num_threads), pos);
      if (ex.forwarding) {
        for (int r = 0; r < num_threads; ++r) {
          if (r != ev.tid && delay_of(ev.tid, ev.idx, r)) {
            w.visible_from[static_cast<std::size_t>(r)] = kNever;
          }
        }
      }
      writes.push_back(std::move(w));
      observed[static_cast<std::size_t>(ev.tid)].push_back(
          static_cast<int>(writes.size()) - 1);

      // Cumulativity trigger: hardware barriers (lwsync, sync, dmb variants
      // ordering stores) are cumulative — writes the thread had observed
      // before the barrier propagate everywhere before writes after it.
      // This write commits after every group-A access of any WW-ordering
      // fence that program-precedes it, so trigger those pushes here.  A
      // release store is itself cumulative in the same way.
      if (ex.forwarding) {
        const auto& instrs = test.threads[static_cast<std::size_t>(ev.tid)].instrs;
        bool push = in.release;
        for (int f = 0; f < ev.idx && !push; ++f) {
          const LitmusInstr& fi = instrs[static_cast<std::size_t>(f)];
          if (!is_access(fi) && fence_order(fi.fence).ww) push = true;
        }
        if (push) {
          for (int wi : observed[static_cast<std::size_t>(ev.tid)]) {
            CommittedWrite& ow = writes[static_cast<std::size_t>(wi)];
            for (int r = 0; r < num_threads; ++r) {
              ow.visible_from[static_cast<std::size_t>(r)] =
                  std::min(ow.visible_from[static_cast<std::size_t>(r)], pos);
            }
          }
        }
      }
    } else if (is_read(in)) {
      // Read the coherence-latest write visible to this thread, never going
      // below the per-location floor already observed.
      int best = -1;
      for (int wi = 0; wi < static_cast<int>(writes.size()); ++wi) {
        const CommittedWrite& w = writes[static_cast<std::size_t>(wi)];
        if (w.var != in.var) continue;
        const bool visible =
            w.tid == ev.tid ||
            w.visible_from[static_cast<std::size_t>(ev.tid)] <= pos;
        const bool floored =
            w.pos <= seen_floor[static_cast<std::size_t>(ev.tid)][static_cast<std::size_t>(in.var)];
        if (visible || floored) {
          if (best < 0 || w.pos > writes[static_cast<std::size_t>(best)].pos) best = wi;
        }
      }
      int value = 0;
      if (best >= 0) {
        const CommittedWrite& w = writes[static_cast<std::size_t>(best)];
        value = w.value;
        seen_floor[static_cast<std::size_t>(ev.tid)][static_cast<std::size_t>(in.var)] =
            std::max(seen_floor[static_cast<std::size_t>(ev.tid)][static_cast<std::size_t>(in.var)],
                     w.pos);
        observed[static_cast<std::size_t>(ev.tid)].push_back(best);
      }
      if (in.reg >= 0) regs[static_cast<std::size_t>(in.reg)] = value;
    } else {
      // Fence node committed.  Any full barrier is cumulative: it pushes the
      // thread's observed writes to everyone and catches the thread up on
      // everything already committed (sync/dmb ish/mfence semantics).
      if (ex.forwarding && is_full_barrier(in.fence)) {
        // Group-A push: writes observed by accesses program-before the sync.
        for (int wi : observed[static_cast<std::size_t>(ev.tid)]) {
          CommittedWrite& ow = writes[static_cast<std::size_t>(wi)];
          for (int r = 0; r < num_threads; ++r) {
            ow.visible_from[static_cast<std::size_t>(r)] =
                std::min(ow.visible_from[static_cast<std::size_t>(r)], pos);
          }
        }
        // Reader catch-up: everything committed so far becomes visible to
        // this thread.
        for (CommittedWrite& w : writes) {
          w.visible_from[static_cast<std::size_t>(ev.tid)] =
              std::min(w.visible_from[static_cast<std::size_t>(ev.tid)], pos);
        }
      }
    }
  }

  // Outcome = registers followed by the final (coherence-latest) value of
  // each variable.
  Outcome outcome = regs;
  for (int v = 0; v < test.num_vars; ++v) {
    int best = -1;
    for (int wi = 0; wi < static_cast<int>(writes.size()); ++wi) {
      if (writes[static_cast<std::size_t>(wi)].var != v) continue;
      if (best < 0 ||
          writes[static_cast<std::size_t>(wi)].pos > writes[static_cast<std::size_t>(best)].pos) {
        best = wi;
      }
    }
    outcome.push_back(best >= 0 ? writes[static_cast<std::size_t>(best)].value : 0);
  }
  ex.outcomes->insert(std::move(outcome));
}

void execute_with_delays(Execution& ex) {
  if (!ex.forwarding || ex.delay_slots.empty()) {
    execute_sequence(ex);
    return;
  }
  const std::size_t bits = ex.delay_slots.size();
  if (bits > 20) {
    throw std::invalid_argument("litmus test too large for delay enumeration");
  }
  for (std::uint64_t mask = 0; mask < (1ULL << bits); ++mask) {
    for (std::size_t b = 0; b < bits; ++b) ex.delays[b] = (mask >> b) & 1ULL;
    execute_sequence(ex);
  }
}

void interleave(Execution& ex,
                const std::vector<std::vector<int>>& chosen_orders,
                std::vector<std::size_t>& cursor) {
  bool done = true;
  for (std::size_t t = 0; t < chosen_orders.size(); ++t) {
    if (cursor[t] < chosen_orders[t].size()) {
      done = false;
      cursor[t] += 1;
      ex.sequence.push_back(EventRef{static_cast<int>(t),
                                     chosen_orders[t][cursor[t] - 1]});
      interleave(ex, chosen_orders, cursor);
      ex.sequence.pop_back();
      cursor[t] -= 1;
    }
  }
  if (done) execute_with_delays(ex);
}

}  // namespace

std::set<Outcome> enumerate_outcomes(const LitmusTest& test, Arch arch) {
  WMM_PROFILE_SPAN(obs::Phase::OpEnumerate);
  std::set<Outcome> outcomes;

  std::vector<ThreadOrders> per_thread;
  per_thread.reserve(test.threads.size());
  for (const LitmusThread& t : test.threads) {
    per_thread.push_back(thread_orders(t, arch));
  }

  Execution ex;
  ex.test = &test;
  ex.arch = arch;
  ex.forwarding = allows_early_forwarding(arch);
  ex.outcomes = &outcomes;

  if (ex.forwarding) {
    for (std::size_t t = 0; t < test.threads.size(); ++t) {
      const auto& instrs = test.threads[t].instrs;
      for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (!is_write(instrs[i])) continue;
        for (std::size_t r = 0; r < test.threads.size(); ++r) {
          if (r == t) continue;
          ex.delay_slots.push_back(
              {EventRef{static_cast<int>(t), static_cast<int>(i)},
               static_cast<int>(r)});
        }
      }
    }
    ex.delays.assign(ex.delay_slots.size(), false);
  }

  // Cartesian product of per-thread commit orders, then all interleavings.
  std::vector<std::size_t> pick(test.threads.size(), 0);
  while (true) {
    std::vector<std::vector<int>> chosen;
    chosen.reserve(test.threads.size());
    for (std::size_t t = 0; t < test.threads.size(); ++t) {
      chosen.push_back(per_thread[t].orders[pick[t]]);
    }
    std::vector<std::size_t> cursor(test.threads.size(), 0);
    interleave(ex, chosen, cursor);

    // Advance the product counter.
    std::size_t t = 0;
    for (; t < test.threads.size(); ++t) {
      if (++pick[t] < per_thread[t].orders.size()) break;
      pick[t] = 0;
    }
    if (t == test.threads.size()) break;
  }
  return outcomes;
}

}  // namespace wmm::sim
