#include "sim/machine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>
#include <string>

#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/metrics.h"

namespace wmm::sim {

namespace {
// Machines number monotonically across the process so every simulated run
// gets a distinct Chrome-trace process track.
std::atomic<unsigned> g_next_machine_id{0};

// Inline mirror of fence_order(kind).ww for the fence hot path (the full
// table lookup is an out-of-line call); fence_test cross-checks the table.
constexpr bool orders_stores(FenceKind kind) {
  switch (kind) {
    case FenceKind::DmbIsh:
    case FenceKind::DsbSy:
    case FenceKind::HwSync:
    case FenceKind::Mfence:
    case FenceKind::LwSync:
    case FenceKind::DmbIshSt:
      return true;
    default:
      return false;
  }
}
}  // namespace

Cpu::Cpu(Machine* machine, int index, const ArchParams& params)
    : machine_(machine),
      index_(index),
      params_(&params),
      reg_(&obs::counters()),
      ids_(&sim_counters()),
      sb_(params.sb_capacity, params.sb_drain_ns,
          machine->columns_.sb_drain_complete() + index,
          machine->columns_.sb_local_hwm() + index),
      rng_(hash_combine(0xc0ffee, static_cast<std::uint64_t>(index))),
      invq_pending_(machine->columns_.invq_pending() + index),
      invq_updated_(machine->columns_.invq_updated() + index) {
  predictor_.reset();
}

void Cpu::nops(std::uint32_t n) { now_ += params_->nop_ns * n; }

double Cpu::pending_invalidations() const {
  // Background acknowledgement drains the queue over time.  An invalidation
  // stamped ahead of this core's clock (the sender's drain happened in this
  // core's local future) has simply not started draining yet — the elapsed
  // time must not go negative or the queue would grow with cross-core clock
  // skew instead of with traffic.
  const double elapsed = std::max(0.0, now_ - *invq_updated_);
  return std::max(0.0, *invq_pending_ - elapsed / kInvBackgroundNs);
}

double Cpu::outstanding_load_wait() const {
  return std::max(0.0, last_load_complete_ - now_);
}

void Cpu::receive_invalidation(double at_time) {
  reg_->add(ids_->invq_received);
  *invq_pending_ = pending_invalidations() + 1.0;
  *invq_updated_ = std::max(*invq_updated_, at_time);
}

double Cpu::process_invalidations() {
  WMM_PROFILE_SPAN(obs::Phase::SbDrain);
  const double pending = pending_invalidations();
  if (pending > 0.0) {
    reg_->add(ids_->invq_drains);
    reg_->add(ids_->invq_drained, static_cast<std::uint64_t>(pending + 0.5));
  }
  *invq_pending_ = 0.0;
  *invq_updated_ = now_;
  return pending * params_->inv_process_ns;
}

void Cpu::load_shared(LineId line) {
  WMM_PROFILE_SPAN(obs::Phase::Coherence);
  const bool transfer = machine_->directory_.read(line, index_);
  if (transfer) {
    const double start = now_;
    const double done = machine_->bus_.reserve(now_, params_->bus_transfer_ns);
    now_ = std::max(now_ + params_->coherence_miss_ns, done);
    if (obs::TraceSink* t = obs::trace()) {
      t->complete("coherence-miss", "mem", machine_->id_,
                  static_cast<std::uint32_t>(index_), start, now_ - start);
    }
  } else {
    now_ += params_->load_l1_ns;
  }
  last_load_complete_ = std::max(last_load_complete_, now_);
}

void Cpu::store_shared(LineId line) {
  {
    WMM_PROFILE_SPAN(obs::Phase::SbDrain);
    const double stall = sb_.push(now_);
    if (stall > 0.0) {
      if (obs::TraceSink* t = obs::trace()) {
        t->complete("sb-stall", "mem", machine_->id_,
                    static_cast<std::uint32_t>(index_), now_, stall);
      }
    }
    now_ += stall + params_->store_issue_ns;
  }
  WMM_PROFILE_SPAN(obs::Phase::Coherence);
  const std::uint32_t targets = machine_->directory_.write(line, index_);
  if (targets != 0) {
    // Ownership transfer happens at drain time; the entry drains late and the
    // bus carries the invalidation traffic.
    const double drain_at = sb_.drain_complete_time();
    machine_->bus_.reserve(drain_at, params_->bus_transfer_ns);
    sb_.delay_drain(params_->bus_transfer_ns);
    machine_->send_invalidations(targets, drain_at);
  }
}

void Cpu::load_acquire(LineId line) {
  load_shared(line);
  // Acquire semantics: later accesses must not start before this load, which
  // costs a little issue-ordering work plus catching up the invalidation
  // queue (cheaper per entry than a full dmb ishld, being scoped to one
  // load's completion).
  now_ += params_->ldar_extra_ns + 0.5 * process_invalidations();
}

void Cpu::store_release(LineId line) {
  // Release: prior stores must drain before this store becomes visible, but
  // the core itself only stalls for a fraction of that wait (the buffer
  // drains in order anyway); pressure shows when the buffer is deep.
  now_ += params_->stlr_extra_ns + params_->stlr_sb_factor * sb_.drain_wait(now_);
  store_shared(line);
}

void Cpu::private_access(unsigned loads, unsigned stores, double miss_rate) {
  double t = 0.0;
  for (unsigned i = 0; i < loads; ++i) {
    if (rng_.next_bool(miss_rate)) {
      // Out-of-order execution hides part of a miss; the rest is in flight.
      t += params_->load_mem_ns * 0.55;
      last_load_complete_ =
          std::max(last_load_complete_, now_ + t + params_->load_mem_ns * 0.45);
    } else {
      t += params_->load_l1_ns;
    }
  }
  now_ += t;
  if (stores > 0) {
    now_ += sb_.push_bulk(now_, stores) + params_->store_issue_ns * stores;
  }
}

void Cpu::branch(std::uint64_t site, bool taken) {
  reg_->add(ids_->branches);
  now_ += params_->branch_ns;
  if (predictor_.mispredicted(site, taken)) {
    reg_->add(ids_->branch_mispredicts);
    if (obs::TraceSink* t = obs::trace()) {
      t->instant("mispredict", "branch", machine_->id_,
                 static_cast<std::uint32_t>(index_), now_);
    }
    now_ += params_->mispredict_ns;
  }
}

void Cpu::pollute_predictor(unsigned branches) {
  predictor_.scramble(rng_, branches);
}

void Cpu::fence(FenceKind kind, std::uint64_t site) {
  reg_->add(ids_->fence[static_cast<std::size_t>(kind)]);
  // A store-ordering fence arriving at a non-empty buffer exposes (part of)
  // the remaining drain: the flush events the paper's in-vivo analysis
  // attributes macro slowdowns to.
  if (orders_stores(kind) && sb_.drain_wait(now_) > 0.0) {
    reg_->add(ids_->sb_drain_flushes);
  }
  const double start = now_;
  fence_impl(kind, site);
  if (kind != FenceKind::None && kind != FenceKind::CompilerOnly) {
    if (obs::TraceSink* t = obs::trace()) {
      t->complete(fence_name(kind), "fence", machine_->id_,
                  static_cast<std::uint32_t>(index_), start, now_ - start);
    }
  }
}

void Cpu::fence_impl(FenceKind kind, std::uint64_t site) {
  const ArchParams& p = *params_;
  switch (kind) {
    case FenceKind::None:
    case FenceKind::CompilerOnly:
      return;
    case FenceKind::Nop:
      now_ += p.nop_ns;
      return;
    case FenceKind::DmbIshSt:
      now_ += p.dmb_base_ns + sb_.drain_wait(now_);
      return;
    case FenceKind::DmbIshLd:
      now_ += p.dmb_base_ns + outstanding_load_wait();
      now_ += process_invalidations();
      return;
    case FenceKind::DmbIsh: {
      const double st_wait = sb_.drain_wait(now_);
      const double ld_wait = outstanding_load_wait();
      now_ += p.dmb_base_ns + p.dmb_ish_extra_ns + std::max(st_wait, ld_wait);
      now_ += process_invalidations();
      return;
    }
    case FenceKind::DsbSy: {
      fence_impl(FenceKind::DmbIsh, site);
      now_ += p.dsb_extra_ns;
      return;
    }
    case FenceKind::Isb:
      now_ += p.pipeline_flush_ns;
      return;
    case FenceKind::CtrlDep:
      // Compare the last load against a constant and branch over an impotent
      // instruction: always not-taken in the injected sequence.
      branch(hash_combine(site, 0x637472ULL), false);
      return;
    case FenceKind::CtrlIsb:
      // The pipeline flush dominates and hides branch resolution, which is
      // why the paper finds ctrl+isb stable across micro and macro settings.
      now_ += p.branch_ns + p.pipeline_flush_ns;
      return;
    case FenceKind::HwSync: {
      const double sb_wait = p.hwsync_sb_factor * sb_.drain_wait(now_);
      const double done = machine_->bus_.reserve(now_, p.bus_transfer_ns * 0.5);
      now_ = std::max(now_ + p.hwsync_base_ns + sb_wait, done);
      now_ += 0.35 * process_invalidations();
      return;
    }
    case FenceKind::LwSync:
      now_ += p.lwsync_base_ns + p.lwsync_sb_factor * sb_.drain_wait(now_);
      now_ += 0.30 * process_invalidations();
      return;
    case FenceKind::ISync:
      now_ += p.isync_base_ns;
      return;
    case FenceKind::Mfence:
      now_ += p.mfence_base_ns + sb_.drain_wait(now_);
      return;
  }
}

void Cpu::exec_seq(const FenceSeq& seq, std::uint64_t site) {
  for (const FenceOp& op : seq) {
    if (op.kind == FenceKind::Nop) {
      nops(op.count == 0 ? 1 : op.count);
    } else {
      fence(op.kind, site);
    }
  }
}

void Cpu::cost_loop(std::uint32_t iterations, bool stack_spill) {
  const ArchParams& p = *params_;
  double t = p.cost_loop_startup_ns + p.cost_loop_iter_ns * iterations;
  if (stack_spill) {
    // Figure 2/3: spill a register to the stack and reload it afterwards.
    // The spill store lands in the store buffer — the small memory-subsystem
    // impact the paper accepts.
    t += p.cost_loop_spill_ns;
    now_ += sb_.push(now_);
  }
  now_ += t;
}

void Cpu::reset() {
  now_ = 0.0;
  sb_.reset();
  predictor_.reset();
  *invq_pending_ = 0.0;
  *invq_updated_ = 0.0;
  last_load_complete_ = 0.0;
}

Machine::Machine(const ArchParams& params)
    : params_(params),
      id_(g_next_machine_id.fetch_add(1, std::memory_order_relaxed)) {
  columns_.init(params_.num_cores);
  cpus_.reserve(params_.num_cores);
  for (unsigned i = 0; i < params_.num_cores; ++i) {
    cpus_.emplace_back(this, static_cast<int>(i), params_);
  }
  if (obs::TraceSink* t = obs::trace()) {
    t->set_process_name(id_, std::string(arch_name(params_.arch)) +
                                 " machine #" + std::to_string(id_));
  }
}

void Machine::send_invalidations(std::uint32_t targets, double at) {
  const unsigned n = static_cast<unsigned>(cpus_.size());
  if (n < 32) targets &= (1u << n) - 1u;
  if (targets == 0) return;
  // One batched receipt count, then a single sweep over the queue columns —
  // each target's update is the exact per-message arithmetic of
  // Cpu::receive_invalidation, without the per-target dispatch.
  obs::counters().add(sim_counters().invq_received,
                      static_cast<std::uint64_t>(std::popcount(targets)));
  double* pending = columns_.invq_pending();
  double* updated = columns_.invq_updated();
  for (std::uint32_t m = targets; m != 0; m &= m - 1) {
    const unsigned c = static_cast<unsigned>(std::countr_zero(m));
    const double now = cpus_[c].now_;
    const double elapsed = std::max(0.0, now - updated[c]);
    const double live =
        std::max(0.0, pending[c] - elapsed / Cpu::kInvBackgroundNs);
    pending[c] = live + 1.0;
    updated[c] = std::max(updated[c], at);
  }
}

void Machine::stall_all(double ns) {
  obs::counters().add(sim_counters().stw_pauses);  // cold path
  double max_now = 0.0;
  for (const Cpu& c : cpus_) max_now = std::max(max_now, c.now());
  if (obs::TraceSink* t = obs::trace()) {
    t->complete("stop-the-world", "machine", id_, 0, max_now, ns);
  }
  for (Cpu& c : cpus_) c.now_ = max_now + ns;
}

double Machine::run(const std::vector<SimThread*>& threads,
                    const std::vector<unsigned>& cpu_of) {
  if (threads.size() != cpu_of.size()) {
    throw std::invalid_argument("Machine::run: threads/cpu_of size mismatch");
  }
  obs::counters().add(sim_counters().machine_runs);
  WMM_PROFILE_SPAN(obs::Phase::MachineRun);
  std::vector<bool> active(threads.size(), true);
  std::size_t remaining = threads.size();
  while (remaining > 0) {
    // Step the active thread with the smallest local clock so that shared
    // state is touched in global time order.
    std::size_t best = threads.size();
    double best_now = 0.0;
    for (std::size_t i = 0; i < threads.size(); ++i) {
      if (!active[i]) continue;
      const double t = cpus_[cpu_of[i]].now();
      if (best == threads.size() || t < best_now) {
        best = i;
        best_now = t;
      }
    }
    bool alive;
    {
      WMM_PROFILE_SPAN(obs::Phase::MachineStep);
      alive = threads[best]->step(cpus_[cpu_of[best]]);
    }
    if (!alive) {
      active[best] = false;
      --remaining;
    }
  }
  double end = 0.0;
  for (unsigned c : cpu_of) end = std::max(end, cpus_[c].now());
  return end;
}

double Machine::run(const std::vector<SimThread*>& threads) {
  std::vector<unsigned> cpu_of(threads.size());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    cpu_of[i] = static_cast<unsigned>(i % cpus_.size());
  }
  return run(threads, cpu_of);
}

void Machine::reset() {
  for (Cpu& c : cpus_) c.reset();
  bus_.reset();
  directory_.reset();
}

}  // namespace wmm::sim
