// Architecture profiles for the timing simulator.
//
// Base latencies are calibrated against the paper's microbenchmark numbers
// (POWER7: lwsync 6.1 ns / sync 18.9 ns; ARMv8: dmb variants indistinguishable
// in vitro; isb/ctrl+isb around 24.5 ns).  Everything context-dependent (store
// buffer occupancy, invalidation queues, branch-predictor pressure) is
// modelled mechanistically in Cpu and is what produces the in-vivo results.
#pragma once

#include <cstdint>
#include <string>

namespace wmm::sim {

enum class Arch : std::uint8_t {
  ARMV8,    // X-Gene-1-like, 8 cores @ 2.4 GHz
  POWER7,   // 12 cores @ 3.7 GHz, SMT
  X86_TSO,  // host-like TSO profile
  SC,       // idealised sequentially consistent machine
};

const char* arch_name(Arch arch);

struct ArchParams {
  Arch arch = Arch::ARMV8;
  unsigned num_cores = 8;

  // Basic pipeline costs (ns).
  double nop_ns = 0.21;           // superscalar nop retire cost
  double branch_ns = 0.42;        // predicted branch
  double mispredict_ns = 13.0;    // branch mispredict penalty
  double pipeline_flush_ns = 23.5;  // isb / full pipeline flush

  // Memory hierarchy (ns).
  double load_l1_ns = 1.7;
  double load_l2_ns = 7.5;
  double load_mem_ns = 95.0;
  double store_issue_ns = 0.5;     // issue into the store buffer
  double coherence_miss_ns = 28.0; // line owned modified by another core
  double bus_transfer_ns = 9.0;    // bus occupancy per coherence transaction

  // Store buffer.
  unsigned sb_capacity = 24;
  double sb_drain_ns = 1.9;        // per-entry drain time to coherence point

  // Invalidation queue.
  double inv_process_ns = 1.35;    // per pending invalidation acknowledged

  // Fence base latencies (ns) with empty buffers/queues.
  double dmb_base_ns = 4.6;        // all dmb variants, in vitro
  double dmb_ish_extra_ns = 0.4;   // extra coherence ping for full dmb ish
  double dsb_extra_ns = 12.0;      // dsb over dmb
  double ldar_extra_ns = 2.6;      // load-acquire over plain load
  double stlr_extra_ns = 3.2;      // store-release over plain store
  double lwsync_base_ns = 5.9;
  double hwsync_base_ns = 18.3;
  double isync_base_ns = 9.0;
  double mfence_base_ns = 5.5;

  // Occupancy coupling: fraction of the store-buffer drain wait a fence of
  // each family actually exposes (out-of-order execution hides the rest).
  double lwsync_sb_factor = 0.30;
  double hwsync_sb_factor = 0.34;  // nearly identical: POWER fences are
                                   // workload-agnostic in the paper
  double stlr_sb_factor = 0.25;

  // Cost-function loop (Figures 2/3): per-iteration latency, fixed startup,
  // and stack spill/reload cost when no scratch register is available.
  double cost_loop_iter_ns = 0.55;
  double cost_loop_startup_ns = 1.4;
  double cost_loop_spill_ns = 2.6;

  // Whether a scratch register is generally available so the stack spill can
  // be elided (true for OpenJDK on ARMv8, per the paper).
  bool scratch_register_available = false;

  // SMT interference: probability per run that a sample lands in a degraded
  // phase, and the slowdown factor of that phase.  Models the instability the
  // paper attributes to POWER7's symmetric multithreading.
  double smt_phase_probability = 0.0;
  double smt_phase_slowdown = 1.0;
};

// Preset profiles.
ArchParams arm_v8_params();
ArchParams power7_params();
ArchParams x86_tso_params();
ArchParams sc_params();
ArchParams params_for(Arch arch);

}  // namespace wmm::sim
