// Deterministic, seedable random number generation for the simulator.
//
// All stochastic elements of the simulation (cache miss draws, run-to-run
// noise, workload data) derive from explicit seeds so that every experiment
// is exactly reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace wmm::sim {

// SplitMix64: used for seed derivation / hashing.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Combine seeds/hashes deterministically.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

std::uint64_t hash_string(const char* s);

// xoshiro256**-style compact PRNG (PCG-like quality, tiny state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    state_[0] = splitmix64(seed);
    state_[1] = splitmix64(state_[0]);
    state_[2] = splitmix64(state_[1]);
    state_[3] = splitmix64(state_[2]);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  bool next_bool(double probability) { return next_double() < probability; }

  // Standard normal via Box-Muller (one value per call; simple and adequate).
  double next_normal() {
    double u1 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  // Lognormal multiplier with median 1 and shape sigma (run-to-run jitter).
  double next_lognormal(double sigma) { return std::exp(sigma * next_normal()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace wmm::sim
