#include "sim/litmus.h"

namespace wmm::sim {

namespace {

constexpr int kX = 0;
constexpr int kY = 1;
constexpr int kZ = 2;

LitmusInstr read_dep(int reg, int var, int addr_dep) {
  LitmusInstr i = LitmusInstr::read(reg, var);
  i.addr_dep = addr_dep;
  return i;
}

LitmusInstr write_data_dep(int var, int value, int data_dep) {
  LitmusInstr i = LitmusInstr::write(var, value);
  i.data_dep = data_dep;
  return i;
}

}  // namespace

bool outcome_allowed(const LitmusTest& test, const Outcome& outcome, Arch arch) {
  return enumerate_outcomes(test, arch).count(outcome) > 0;
}

std::optional<bool> expected_allowed(const LitmusCase& c, Arch arch) {
  switch (arch) {
    case Arch::SC: return c.allowed_sc;
    case Arch::X86_TSO: return c.allowed_tso;
    case Arch::ARMV8: return c.allowed_arm;
    case Arch::POWER7: return c.allowed_power;
  }
  return std::nullopt;
}

LitmusCase make_sb() {
  LitmusCase c;
  c.test.name = "SB";
  c.test.num_vars = 2;
  c.test.num_regs = 2;
  c.test.threads = {
      {{LitmusInstr::write(kX, 1), LitmusInstr::read(0, kY)}},
      {{LitmusInstr::write(kY, 1), LitmusInstr::read(1, kX)}},
  };
  c.relaxed_outcome = {0, 0, 1, 1};
  c.allowed_sc = false;
  c.allowed_tso = true;
  c.allowed_arm = true;
  c.allowed_power = true;
  return c;
}

LitmusCase make_sb_fenced(FenceKind kind) {
  LitmusCase c = make_sb();
  c.test.name = std::string("SB+") + fence_name(kind);
  for (auto& t : c.test.threads) {
    t.instrs.insert(t.instrs.begin() + 1, LitmusInstr::barrier(kind));
  }
  const bool full = fence_order(kind).full();
  c.allowed_sc = false;
  c.allowed_tso = !full;
  c.allowed_arm = !fence_order(kind).wr;
  c.allowed_power = !fence_order(kind).wr;
  return c;
}

LitmusCase make_mp() {
  LitmusCase c;
  c.test.name = "MP";
  c.test.num_vars = 2;
  c.test.num_regs = 2;
  c.test.threads = {
      {{LitmusInstr::write(kX, 1), LitmusInstr::write(kY, 1)}},
      {{LitmusInstr::read(0, kY), LitmusInstr::read(1, kX)}},
  };
  c.relaxed_outcome = {1, 0, 1, 1};  // saw the flag but not the payload
  c.allowed_sc = false;
  c.allowed_tso = false;
  c.allowed_arm = true;
  c.allowed_power = true;
  return c;
}

LitmusCase make_mp_fenced_dep(FenceKind writer_fence) {
  LitmusCase c = make_mp();
  c.test.name = std::string("MP+") + fence_name(writer_fence) + "+addr";
  c.test.threads[0].instrs.insert(c.test.threads[0].instrs.begin() + 1,
                                  LitmusInstr::barrier(writer_fence));
  c.test.threads[1].instrs[1] = read_dep(1, kX, /*addr_dep=*/0);
  // Writer store-store order plus reader address dependency forbids the
  // relaxed outcome on every architecture whose fence orders WW.
  const bool ww = fence_order(writer_fence).ww;
  c.allowed_arm = !ww;
  c.allowed_power = !ww;
  c.allowed_tso = false;
  c.allowed_sc = false;
  return c;
}

LitmusCase make_mp_writer_fence_only(FenceKind kind) {
  LitmusCase c = make_mp();
  c.test.name = std::string("MP+") + fence_name(kind) + "+po";
  c.test.threads[0].instrs.insert(c.test.threads[0].instrs.begin() + 1,
                                  LitmusInstr::barrier(kind));
  // Without reader-side ordering the reader may still reorder its reads.
  c.allowed_arm = true;
  c.allowed_power = true;
  c.allowed_tso = false;
  c.allowed_sc = false;
  return c;
}

LitmusCase make_mp_ctrl() {
  LitmusCase c = make_mp_writer_fence_only(FenceKind::DmbIshSt);
  c.test.name = "MP+dmb.ishst+ctrl";
  // Reader: second read control-depends on the first; a bare control
  // dependency does not order read->read (reads can be speculated).
  c.test.threads[1].instrs[1].ctrl_dep = 0;
  c.allowed_arm = true;
  c.allowed_power = true;
  return c;
}

LitmusCase make_mp_ctrl_isb() {
  LitmusCase c = make_mp_ctrl();
  c.test.name = "MP+dmb.ishst+ctrl+isb";
  // ctrl+isb after the first read orders it with subsequent reads.
  c.test.threads[1].instrs.insert(c.test.threads[1].instrs.begin() + 1,
                                  LitmusInstr::barrier(FenceKind::CtrlIsb));
  c.allowed_arm = false;
  c.allowed_power = false;  // isync analogue
  return c;
}

LitmusCase make_mp_acq_rel() {
  LitmusCase c = make_mp();
  c.test.name = "MP+rel+acq";
  c.test.threads[0].instrs[1].release = true;  // stlr y
  c.test.threads[1].instrs[0].acquire = true;  // ldar y
  c.allowed_arm = false;
  c.allowed_power = false;
  c.allowed_tso = false;
  c.allowed_sc = false;
  return c;
}

LitmusCase make_lb() {
  LitmusCase c;
  c.test.name = "LB";
  c.test.num_vars = 2;
  c.test.num_regs = 2;
  c.test.threads = {
      {{LitmusInstr::read(0, kX), LitmusInstr::write(kY, 1)}},
      {{LitmusInstr::read(1, kY), LitmusInstr::write(kX, 1)}},
  };
  c.relaxed_outcome = {1, 1, 1, 1};
  c.allowed_sc = false;
  c.allowed_tso = false;
  c.allowed_arm = true;
  c.allowed_power = true;
  return c;
}

LitmusCase make_lb_deps() {
  LitmusCase c = make_lb();
  c.test.name = "LB+datas";
  c.test.threads[0].instrs[1] = write_data_dep(kY, 1, 0);
  c.test.threads[1].instrs[1] = write_data_dep(kX, 1, 1);
  c.allowed_arm = false;
  c.allowed_power = false;
  return c;
}

LitmusCase make_corr() {
  LitmusCase c;
  c.test.name = "CoRR";
  c.test.num_vars = 1;
  c.test.num_regs = 2;
  c.test.threads = {
      {{LitmusInstr::write(kX, 1)}},
      {{LitmusInstr::read(0, kX), LitmusInstr::read(1, kX)}},
  };
  c.relaxed_outcome = {1, 0, 1};  // new then old value: coherence violation
  c.allowed_sc = false;
  c.allowed_tso = false;
  c.allowed_arm = false;
  c.allowed_power = false;
  return c;
}

LitmusCase make_2p2w() {
  LitmusCase c;
  c.test.name = "2+2W";
  c.test.num_vars = 2;
  c.test.num_regs = 0;
  c.test.threads = {
      {{LitmusInstr::write(kX, 1), LitmusInstr::write(kY, 2)}},
      {{LitmusInstr::write(kY, 1), LitmusInstr::write(kX, 2)}},
  };
  c.relaxed_outcome = {1, 1};  // both first writes finish last
  c.allowed_sc = false;
  c.allowed_tso = false;
  c.allowed_arm = true;
  c.allowed_power = true;
  return c;
}

LitmusCase make_s() {
  LitmusCase c;
  c.test.name = "S";
  c.test.num_vars = 2;
  c.test.num_regs = 1;
  c.test.threads = {
      {{LitmusInstr::write(kX, 2), LitmusInstr::write(kY, 1)}},
      {{LitmusInstr::read(0, kY), LitmusInstr::write(kX, 1)}},
  };
  // Saw the flag, yet the dependent write lost the coherence race.
  c.relaxed_outcome = {1, 2, 1};
  c.allowed_sc = false;
  c.allowed_tso = false;  // WW and RW are both ordered under TSO
  c.allowed_arm = true;
  c.allowed_power = true;
  return c;
}

LitmusCase make_s_fenced_dep() {
  LitmusCase c = make_s();
  c.test.name = "S+dmb.ishst+data";
  c.test.threads[0].instrs.insert(c.test.threads[0].instrs.begin() + 1,
                                  LitmusInstr::barrier(FenceKind::DmbIshSt));
  c.test.threads[1].instrs[1] = write_data_dep(kX, 1, 0);
  c.allowed_arm = false;
  c.allowed_power = false;
  return c;
}

LitmusCase make_r() {
  LitmusCase c;
  c.test.name = "R";
  c.test.num_vars = 2;
  c.test.num_regs = 1;
  c.test.threads = {
      {{LitmusInstr::write(kX, 1), LitmusInstr::write(kY, 1)}},
      {{LitmusInstr::write(kY, 2), LitmusInstr::read(0, kX)}},
  };
  // T1's write wins the y race yet its read misses T0's x: needs the
  // store->load reordering, so even TSO allows it.
  c.relaxed_outcome = {0, 1, 2};
  c.allowed_sc = false;
  c.allowed_tso = true;
  c.allowed_arm = true;
  c.allowed_power = true;
  return c;
}

LitmusCase make_r_fenced(FenceKind kind) {
  LitmusCase c = make_r();
  c.test.name = std::string("R+") + fence_name(kind);
  for (auto& t : c.test.threads) {
    t.instrs.insert(t.instrs.begin() + 1, LitmusInstr::barrier(kind));
  }
  const bool full = fence_order(kind).full();
  c.allowed_sc = false;
  c.allowed_tso = !full;
  c.allowed_arm = !full;
  c.allowed_power = !full;
  return c;
}

LitmusCase make_wrc_dep() {
  LitmusCase c;
  c.test.name = "WRC+data+addr";
  c.test.num_vars = 2;
  c.test.num_regs = 3;
  c.test.threads = {
      {{LitmusInstr::write(kX, 1)}},
      {{LitmusInstr::read(0, kX), write_data_dep(kY, 1, 0)}},
      {{LitmusInstr::read(1, kY), read_dep(2, kX, 1)}},
  };
  c.relaxed_outcome = {1, 1, 0, 1, 1};
  c.allowed_sc = false;
  c.allowed_tso = false;
  c.allowed_arm = false;  // ARMv8 is multi-copy atomic
  c.allowed_power = true; // write visible to T1 before T2
  return c;
}

LitmusCase make_wrc_sync() {
  LitmusCase c = make_wrc_dep();
  c.test.name = "WRC+sync+addr";
  c.test.threads[1].instrs = {LitmusInstr::read(0, kX),
                              LitmusInstr::barrier(FenceKind::HwSync),
                              LitmusInstr::write(kY, 1)};
  c.allowed_power = false;  // sync is cumulative
  return c;
}

LitmusCase make_isa2() {
  LitmusCase c;
  c.test.name = "ISA2";
  c.test.num_vars = 3;
  c.test.num_regs = 3;
  c.test.threads = {
      {{LitmusInstr::write(kX, 1), LitmusInstr::write(kY, 1)}},
      {{LitmusInstr::read(0, kY), write_data_dep(kZ, 1, 0)}},
      {{LitmusInstr::read(1, kZ), read_dep(2, kX, 1)}},
  };
  c.relaxed_outcome = {1, 1, 0, 1, 1, 1};
  c.allowed_sc = false;
  c.allowed_tso = false;  // W->W, R->W and R->R are all preserved on TSO
  c.allowed_arm = true;   // T0's unfenced writes may reorder
  c.allowed_power = true;
  return c;
}

LitmusCase make_isa2_lwsync_deps() {
  LitmusCase c = make_isa2();
  c.test.name = "ISA2+lwsync+data+addr";
  c.test.threads[0].instrs = {LitmusInstr::write(kX, 1),
                              LitmusInstr::barrier(FenceKind::LwSync),
                              LitmusInstr::write(kY, 1)};
  c.allowed_arm = false;
  // lwsync's A-cumulativity carries x=1 down the whole dependency chain.
  c.allowed_power = false;
  return c;
}

LitmusCase make_iriw() {
  LitmusCase c;
  c.test.name = "IRIW";
  c.test.num_vars = 2;
  c.test.num_regs = 4;
  c.test.threads = {
      {{LitmusInstr::write(kX, 1)}},
      {{LitmusInstr::write(kY, 1)}},
      {{LitmusInstr::read(0, kX), LitmusInstr::read(1, kY)}},
      {{LitmusInstr::read(2, kY), LitmusInstr::read(3, kX)}},
  };
  c.relaxed_outcome = {1, 0, 1, 0, 1, 1};  // readers disagree on write order
  c.allowed_sc = false;
  c.allowed_tso = false;
  c.allowed_arm = true;   // plain reads may reorder locally
  c.allowed_power = true;
  return c;
}

LitmusCase make_iriw_fenced(FenceKind kind) {
  LitmusCase c = make_iriw();
  c.test.name = std::string("IRIW+") + fence_name(kind);
  for (std::size_t t = 2; t < 4; ++t) {
    c.test.threads[t].instrs.insert(c.test.threads[t].instrs.begin() + 1,
                                    LitmusInstr::barrier(kind));
  }
  const bool orders_reads = fence_order(kind).rr;
  // With reads locally ordered the outcome survives only on architectures
  // that are not multi-copy atomic, and a full barrier's reader catch-up
  // (sync, dmb ish) kills it even there; lwsync does not catch readers up.
  c.allowed_arm = !orders_reads;
  c.allowed_power = !orders_reads || !fence_order(kind).full();
  c.allowed_tso = false;
  c.allowed_sc = false;
  return c;
}

std::vector<LitmusCase> litmus_suite() {
  return {
      make_sb(),
      make_sb_fenced(FenceKind::DmbIsh),
      make_sb_fenced(FenceKind::HwSync),
      make_sb_fenced(FenceKind::Mfence),
      make_sb_fenced(FenceKind::LwSync),
      make_sb_fenced(FenceKind::DmbIshSt),
      make_mp(),
      make_mp_fenced_dep(FenceKind::DmbIshSt),
      make_mp_fenced_dep(FenceKind::LwSync),
      make_mp_fenced_dep(FenceKind::DmbIsh),
      make_mp_writer_fence_only(FenceKind::DmbIshSt),
      make_mp_ctrl(),
      make_mp_ctrl_isb(),
      make_mp_acq_rel(),
      make_lb(),
      make_lb_deps(),
      make_corr(),
      make_2p2w(),
      make_s(),
      make_s_fenced_dep(),
      make_r(),
      make_r_fenced(FenceKind::DmbIsh),
      make_r_fenced(FenceKind::HwSync),
      make_wrc_dep(),
      make_wrc_sync(),
      make_isa2(),
      make_isa2_lwsync_deps(),
      make_iriw(),
      make_iriw_fenced(FenceKind::DmbIsh),
      make_iriw_fenced(FenceKind::LwSync),
      make_iriw_fenced(FenceKind::HwSync),
  };
}

}  // namespace wmm::sim
