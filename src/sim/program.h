// Compiled-program representation and binary rewriting.
//
// The paper instruments the Linux kernel by compiling barrier macros to
// "illegal, but uniquely identifiable, instruction sequences" and rewriting
// the kernel binary with nop/dmb/cost-function sequences while keeping the
// code size of every section invariant.  Section 6 proposes the same
// technique for already-compiled code using C11 atomics.
//
// This module provides that substrate: a linear instruction representation
// with explicit slot sizes, a rewriter that swaps fence implementations
// (padding with nops so the program's slot count never changes), and an
// Alglave-style scanner that finds litmus-test shapes (MP/SB-like access
// patterns around fences) to flag code whose behaviour may change with the
// fencing strategy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fence.h"
#include "sim/machine.h"

namespace wmm::sim {

enum class ProgOp : std::uint8_t {
  Compute,      // ns of straight-line work
  PrivateLoad,  // count loads at miss_rate
  PrivateStore, // count stores
  SharedLoad,   // coherent load of `line`
  SharedStore,  // coherent store of `line`
  Fence,        // a fence instruction (rewriting target)
  Nop,          // count nops (padding)
  CostLoop,     // injected cost function of `count` iterations
  Branch,       // conditional branch at `site`
};

struct ProgInstr {
  ProgOp op = ProgOp::Compute;
  double ns = 0.0;          // Compute
  std::uint32_t count = 1;  // loads/stores/nops/iterations
  double miss_rate = 0.0;   // PrivateLoad
  LineId line = 0;          // shared accesses
  FenceKind fence = FenceKind::None;
  std::uint64_t site = 0;   // Branch / Fence site id
  bool taken = true;        // Branch direction
  bool spill = true;        // CostLoop stack spill

  static ProgInstr compute(double ns);
  static ProgInstr loads(std::uint32_t n, double miss_rate);
  static ProgInstr stores(std::uint32_t n);
  static ProgInstr shared_load(LineId line);
  static ProgInstr shared_store(LineId line);
  static ProgInstr barrier(FenceKind kind, std::uint64_t site = 0);
  static ProgInstr nops(std::uint32_t n);
  static ProgInstr cost_loop(std::uint32_t iterations, bool spill);

  // Instruction slots this entry occupies in the binary image.
  std::uint32_t slots() const;
};

class Program {
 public:
  Program() = default;
  explicit Program(std::vector<ProgInstr> instrs) : instrs_(std::move(instrs)) {}

  void push(ProgInstr instr) { instrs_.push_back(instr); }

  const std::vector<ProgInstr>& instrs() const { return instrs_; }
  std::size_t size() const { return instrs_.size(); }

  // Total instruction slots (binary image size proxy); rewrites must keep
  // this invariant.
  std::uint32_t total_slots() const;

  // Execute once on `cpu`; returns elapsed simulated ns.
  double run(Cpu& cpu) const;

  // Number of fence entries of `kind`.
  std::size_t count_fences(FenceKind kind) const;

 private:
  std::vector<ProgInstr> instrs_;
};

// Binary rewriting with size preservation: each transformation pads the
// replacement to the slot count of the original sequence (or pads the
// original with leading nops when the replacement is larger, growing both
// sides identically so that base and test binaries stay comparable).
class BinaryRewriter {
 public:
  // Replace every fence of kind `from` with the sequence `to`, padding with
  // nops so every rewritten site occupies max(slots(from-site), slots(to)).
  // Returns the rewritten program; `reference` (the base case) receives the
  // same padding and is returned through `base_out`.
  static void replace_fences(const Program& original, FenceKind from,
                             const FenceSeq& to, Program& base_out,
                             Program& test_out);

  // Inject a cost function after every fence of kind `at` (test) / the same
  // number of nop slots (base).
  static void inject_cost_function(const Program& original, FenceKind at,
                                   std::uint32_t iterations, bool spill,
                                   Program& base_out, Program& test_out);
};

// Alglave-style static scan: occurrences of litmus-shaped access patterns.
struct ShapeReport {
  std::size_t fences = 0;            // total fence instructions
  std::size_t mp_writer_shapes = 0;  // store ; fence(WW) ; store
  std::size_t mp_reader_shapes = 0;  // load ; fence(RR) ; load
  std::size_t sb_shapes = 0;         // store ; fence(WR or none) ; load
  std::size_t unfenced_racy_pairs = 0;  // adjacent shared accesses, no fence

  // A program with shapes but few/no fences is a candidate for evaluation
  // under a changed fencing strategy (the paper's section 5 use case).
  bool fencing_sensitive() const {
    return mp_writer_shapes + mp_reader_shapes + sb_shapes > 0;
  }
};

ShapeReport scan_for_shapes(const Program& program);

// A ready-made "compiled C11 application": a seqlock-style reader/writer
// loop compiled with seq_cst atomics (full fences), as a rewriting target.
Program make_c11_seqcst_program(unsigned iterations, LineId base_line);

}  // namespace wmm::sim
