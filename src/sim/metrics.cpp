#include "sim/metrics.h"

#include <string>

namespace wmm::sim {

namespace {

// Counter names use '_' where the instruction mnemonic has spaces or '+'
// ("dmb ish" -> "sim.fence.dmb_ish") so they stay single tokens in reports.
std::string slug(const char* name) {
  std::string s(name);
  for (char& c : s) {
    if (c == ' ' || c == '+') c = '_';
  }
  return s;
}

SimCounterIds register_all() {
  obs::CounterRegistry& reg = obs::counters();
  SimCounterIds ids;
  for (std::size_t i = 0; i < kNumFenceKinds; ++i) {
    ids.fence[i] = reg.register_counter(
        "sim.fence." + slug(fence_name(static_cast<FenceKind>(i))));
  }
  ids.sb_stores = reg.register_counter("sim.sb.stores");
  ids.sb_full_stalls = reg.register_counter("sim.sb.full_stalls");
  ids.sb_occupancy_hwm = reg.register_gauge("sim.sb.occupancy_hwm");
  ids.sb_drain_flushes = reg.register_counter("sim.sb.drain_flushes");
  ids.invq_received = reg.register_counter("sim.invq.received");
  ids.invq_drains = reg.register_counter("sim.invq.drains");
  ids.invq_drained = reg.register_counter("sim.invq.drained_entries");
  ids.bus_transactions = reg.register_counter("sim.bus.transactions");
  ids.coh_misses = reg.register_counter("sim.coherence.misses");
  ids.coh_transfers = reg.register_counter("sim.coherence.ownership_transfers");
  ids.coh_invalidations = reg.register_counter("sim.coherence.invalidations_sent");
  ids.branches = reg.register_counter("sim.branch.executed");
  ids.branch_mispredicts = reg.register_counter("sim.branch.mispredicts");
  ids.machine_runs = reg.register_counter("sim.machine.runs");
  ids.stw_pauses = reg.register_counter("sim.machine.stw_pauses");
  return ids;
}

}  // namespace

const SimCounterIds& sim_counters() {
  static const SimCounterIds ids = register_all();
  return ids;
}

}  // namespace wmm::sim
