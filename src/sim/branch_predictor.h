// A small table of 2-bit saturating counters indexed by branch-site hash.
//
// The injected `ctrl` read-ordering sequence adds one always-taken branch per
// barrier invocation.  In a microbenchmark that branch trains perfectly; in a
// macrobenchmark the application's own branches alias into the same table and
// evict its history, which is the mechanism behind the paper's observation
// that the in-vivo cost of `ctrl` (10.1 ns) exceeds its in-vitro cost
// (4.6 ns): "we speculate the effect on the branch prediction of the
// additional branch is more noticeable in macrobenchmarks".
#pragma once

#include <array>
#include <cstdint>

#include "sim/rng.h"

namespace wmm::sim {

class BranchPredictor {
 public:
  // Predict-and-update for a branch at `site` with actual direction `taken`.
  // Returns true when the prediction was wrong.
  bool mispredicted(std::uint64_t site, bool taken) {
    std::uint8_t& counter = table_[splitmix64(site) & kMask];
    const bool predicted_taken = counter >= 2;
    const bool wrong = predicted_taken != taken;
    if (taken) {
      if (counter < 3) ++counter;
    } else {
      if (counter > 0) --counter;
    }
    return wrong;
  }

  void reset() { table_.fill(1); }

  // Overwrite `n` random entries — models the eviction pressure of the
  // surrounding application's branch working set on the injected ctrl site.
  void scramble(Rng& rng, unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      table_[rng.next_u64() & kMask] = static_cast<std::uint8_t>(rng.next_u64() & 3);
    }
  }

  static constexpr std::size_t size() { return kSize; }

 private:
  static constexpr std::size_t kSize = 256;
  static constexpr std::size_t kMask = kSize - 1;
  std::array<std::uint8_t, kSize> table_{};
};

}  // namespace wmm::sim
