// Differential conformance fuzzing for the simulated memory models.
//
// A seeded generator produces small random litmus programs (2–4 threads over
// a handful of shared locations, with plain/acquire/release accesses, every
// FenceKind, and address/data/control dependencies).  Each program is run
// through both the operational executor (memory_model.h) and the independent
// axiomatic checker (axiomatic.h); any disagreement is a *divergence*, which
// is automatically shrunk to a minimal program and reported together with the
// generating seed so it replays deterministically:
//
//     build/bench/fuzz_conformance --arch=arm --replay=0x1234abcd
//
// Conformance per architecture:
//   SC / X86_TSO / ARMV8 — exact equality of the outcome sets against the
//                          single-axiom checker (axiomatic.h).
//   POWER7              — exact equality against the Herding-Cats POWER model
//                          (axiomatic_power.h).  The pre-PR-3 sandwich bounds
//                          (operational ⊆ coherence+causality envelope,
//                          ARMv8-axiomatic ⊆ operational) remain available
//                          behind AxiomaticOptions::power_sandwich /
//                          fuzz_conformance --sandwich for differential
//                          debugging of the exact oracle.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/axiomatic.h"
#include "sim/litmus.h"

namespace wmm::cache {
class ResultCache;
}  // namespace wmm::cache

namespace wmm::sim {

// Program-shape bounds for the generator.  The defaults keep both the
// operational interleaving enumeration and the axiomatic candidate
// enumeration tractable; POWER gets tighter bounds because its visibility-
// delay enumeration is exponential in the number of (write, observer) pairs.
struct FuzzConfig {
  int min_threads = 2;
  int max_threads = 4;
  int min_instrs_per_thread = 1;
  int max_instrs_per_thread = 4;
  int max_total_instrs = 8;
  int max_total_writes = 4;
  int max_vars = 3;
  double fence_probability = 0.22;
  double dep_probability = 0.35;
  double acquire_release_probability = 0.12;
  // Fences drawn (uniformly) when a fence slot is generated.  Mixing ISAs is
  // intentional: the executor and checker both give every FenceKind a single
  // cross-architecture semantics.
  std::vector<FenceKind> fence_alphabet = {
      FenceKind::DmbIsh,   FenceKind::DmbIshLd, FenceKind::DmbIshSt,
      FenceKind::DsbSy,    FenceKind::Isb,      FenceKind::CtrlIsb,
      FenceKind::HwSync,   FenceKind::LwSync,   FenceKind::ISync,
      FenceKind::Mfence,   FenceKind::Nop,
  };

  // Per-architecture default shapes (POWER: smaller programs).
  static FuzzConfig for_arch(Arch arch);

  // Biased POWER shapes for exercising the exact model's teeth: the default
  // generator at POWER's size budget almost never emits the store-buffering
  // or write-read-causality shapes that witness a weakened POWER axiom, so
  // the teeth tests (and fuzz_conformance --weaken=power-*) fuzz with these
  // instead.  `power_teeth_sb` biases towards two-thread store-buffering
  // with lwsync/sync fences (catches lwsync_is_sync);  `power_teeth_wrc`
  // towards three-thread causality chains (catches drop_b_cumulativity and
  // drop_observation).
  static FuzzConfig power_teeth_sb();
  static FuzzConfig power_teeth_wrc();
};

// Deterministically generate the litmus program for `seed`.
LitmusTest generate_litmus(std::uint64_t seed, const FuzzConfig& config = {});

// Human-readable forms used in divergence reports and the explorer example.
std::string format_litmus(const LitmusTest& test);
std::string format_outcome(const LitmusTest& test, const Outcome& outcome);

// One operational-vs-axiomatic disagreement.
struct Divergence {
  Arch arch = Arch::ARMV8;
  std::uint64_t seed = 0;      // generator seed; 0 when hand-constructed
  LitmusTest original;
  LitmusTest shrunk;
  Outcome outcome;             // witness outcome the two sides disagree on
  bool operational_allowed = false;
  bool axiomatic_allowed = false;
  std::string axiom;  // "exact", "power-hc-exact[/AXIOM]" or (sandwich mode)
                      // "envelope-upper"/"envelope-lower"

  // Multi-line report: verdicts, shrunk program, replay command line.
  std::string report() const;
};

// Cross-check one program on one architecture.  Returns the (un-shrunk)
// divergence, or nullopt when the two models agree.
std::optional<Divergence> check_conformance(const LitmusTest& test, Arch arch,
                                            const AxiomaticOptions& options = {});

// Greedily minimise `test` while check_conformance keeps reporting a
// divergence: drop threads, drop instructions, strip dependency/acquire/
// release annotations, then compact variable and register numbering.
// Deterministic: the same input always shrinks to the same program.
LitmusTest shrink_divergent(const LitmusTest& test, Arch arch,
                            const AxiomaticOptions& options = {});

struct FuzzReport {
  Arch arch = Arch::ARMV8;
  std::uint64_t base_seed = 0;
  int programs = 0;
  long long outcomes_checked = 0;   // total operational outcomes compared
  long long memo_hits = 0;          // programs answered without simulation
                                    // (in-memory memo or on-disk store)
  long long memo_misses = 0;        // programs fully cross-checked
  long long store_hits = 0;         // subset of memo_hits answered by the
                                    // persistent store (FuzzRunOptions::cache)
  std::vector<Divergence> divergences;  // already shrunk

  bool ok() const { return divergences.empty(); }
};

// Execution policy for run_conformance_corpus.  Every field is independent
// of the report contents: the report (and stdout built from it) is
// bit-identical for any `threads` value, because seeds are generated,
// deduplicated, and merged in seed order on the driver thread and only the
// per-program cross-checks fan out.
struct FuzzRunOptions {
  // Worker threads for the per-program cross-checks; <=1 keeps everything on
  // the calling thread.
  int threads = 1;
  // Stop an architecture's corpus after this many divergences.
  int max_divergences = 1;
  // Canonical-program memo: programs isomorphic to an already-conformant
  // program (same shape modulo thread order and var/reg/value numbering) are
  // answered from the cache.  Divergent programs are never cached, so every
  // divergence is still recomputed and reported exactly.
  bool memoize = true;
  // Seeds scanned per dispatch wave.  Fixed — never derived from `threads` —
  // so the dedup pattern, counter totals, and early-stop point match across
  // thread counts.
  int chunk_size = 256;
  // Persistent content-addressed store (cache/store.h).  Consulted on every
  // in-memory memo miss under a key of canonical_program_key plus the
  // arch/config/options fingerprint; conformant verdicts are written back,
  // divergent programs never are, so a warm corpus re-run skips simulation
  // for every previously conformant program while still recomputing and
  // reporting any divergence exactly.  Report contents (programs, outcomes,
  // divergences) are byte-identical with or without the store; only the
  // hit/miss accounting (identity-excluded) differs.
  cache::ResultCache* cache = nullptr;
};

// Cache-key prefix for one (arch, generator config, axiomatic options)
// combination; the per-program suffix is canonical_program_key.  Any field
// that changes a conformance verdict or an outcome count must be encoded
// here.
std::string fuzz_cache_prefix(Arch arch, const FuzzConfig& config,
                              const AxiomaticOptions& options);

// Canonical structural key for a generated program: the lexicographically
// smallest encoding over all thread orderings, with variables, registers,
// and written values renumbered by encounter order.  Two programs with equal
// keys are isomorphic, so they have the same conformance verdict and the
// same operational outcome-set size.
std::string canonical_program_key(const LitmusTest& test);

// Run `count` generated programs (seeds derived from `base_seed` via
// hash_combine(base_seed, index)) through check_conformance on `arch`,
// shrinking each divergence.
FuzzReport run_conformance_corpus(Arch arch, std::uint64_t base_seed, int count,
                                  const FuzzConfig& config,
                                  const AxiomaticOptions& options,
                                  const FuzzRunOptions& run);

// Compatibility overload: sequential, no memo cache, stop after
// `max_divergences` failures — the pre-parallel-engine behaviour.
FuzzReport run_conformance_corpus(Arch arch, std::uint64_t base_seed, int count,
                                  const FuzzConfig& config,
                                  const AxiomaticOptions& options = {},
                                  int max_divergences = 1);

// Convenience overload using FuzzConfig::for_arch(arch).
FuzzReport run_conformance_corpus(Arch arch, std::uint64_t base_seed,
                                  int count);

}  // namespace wmm::sim
