#include "sim/litmus_family.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "sim/fuzz.h"

namespace wmm::sim {

namespace {

bool source_is_write(CommEdge e) { return e != CommEdge::Fre; }
bool target_is_write(CommEdge e) { return e != CommEdge::Rfe; }

char comm_char(CommEdge e) {
  switch (e) {
    case CommEdge::Rfe: return 'R';
    case CommEdge::Fre: return 'F';
    case CommEdge::Coe: return 'C';
  }
  return '?';
}

bool link_real(const FamilyLink& l) { return l.kind != LinkKind::None; }

// Classic diy/herd cycle names, stored in one fixed rotation; candidates are
// matched against every rotation.  `none_mask` bit i set = links[i] is None
// (a single-event thread).
struct ClassicEntry {
  const char* pattern;
  unsigned none_mask;
  const char* name;
};
const ClassicEntry kClassics[] = {
    {"RF", 0u, "MP"},       {"FF", 0u, "SB"},   {"RR", 0u, "LB"},
    {"RC", 0u, "S"},        {"CF", 0u, "R"},    {"CC", 0u, "2+2W"},
    {"RRF", 0u, "ISA2"},    {"RRF", 1u, "WRC"}, {"RFF", 1u, "RWC"},
    {"RCF", 1u, "WWC"},     {"RFRF", 5u, "IRIW"},
};

// One realised event of the cycle.
struct Event {
  bool is_write = false;
  int loc = 0;
  int value = 0;  // write value, or the value a read must observe
  int reg = -1;   // destination register for reads
};

}  // namespace

const char* comm_edge_name(CommEdge e) {
  switch (e) {
    case CommEdge::Rfe: return "Rfe";
    case CommEdge::Fre: return "Fre";
    case CommEdge::Coe: return "Coe";
  }
  return "?";
}

std::string family_link_name(const FamilyLink& link) {
  switch (link.kind) {
    case LinkKind::None: return "";
    case LinkKind::Po: return "po";
    case LinkKind::DepAddr: return "addr";
    case LinkKind::DepData: return "data";
    case LinkKind::DepCtrl: return "ctrl";
    case LinkKind::Fence: {
      std::string name;
      for (const char* p = fence_name(link.fence); *p; ++p) {
        if (*p == ' ') name += '.';
        else if (*p != '+') name += *p;
      }
      return name;
    }
  }
  return "";
}

bool family_spec_valid(const FamilySpec& spec) {
  const std::size_t n = spec.comm.size();
  if (n < 2 || spec.links.size() != n) return false;
  if (!link_real(spec.links[0])) return false;
  int real = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FamilyLink& l = spec.links[i];
    const CommEdge prev = spec.comm[(i + n - 1) % n];
    // Thread i's first event is target(c_{i-1}), its second source(c_i).
    const bool first_w = target_is_write(prev);
    const bool second_w = source_is_write(spec.comm[i]);
    switch (l.kind) {
      case LinkKind::None:
        if (first_w != second_w) return false;  // merged event needs one type
        break;
      case LinkKind::Po:
        ++real;
        break;
      case LinkKind::Fence:
        if (l.fence == FenceKind::None || l.fence == FenceKind::CtrlDep ||
            l.fence == FenceKind::CompilerOnly)
          return false;
        ++real;
        break;
      case LinkKind::DepAddr:
      case LinkKind::DepCtrl:
        if (first_w) return false;  // dependencies spring from a read
        ++real;
        break;
      case LinkKind::DepData:
        if (first_w || !second_w) return false;
        ++real;
        break;
    }
  }
  return real >= 2;  // >= 2 locations
}

FamilyProgram realize_family(const FamilySpec& spec) {
  if (!family_spec_valid(spec))
    throw std::invalid_argument("realize_family: invalid family spec");
  const std::size_t n = spec.comm.size();

  // Locations: walk the cycle, switching location at every real link.
  std::vector<int> loc(n, 0);
  for (std::size_t i = 1; i < n; ++i)
    loc[i] = loc[i - 1] + (link_real(spec.links[i]) ? 1 : 0);
  const int num_locs = loc[n - 1] + 1;

  // Events per thread: [target(c_{i-1})] and [source(c_i)], merged when the
  // link is None.
  std::vector<std::vector<Event>> events(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t prev = (i + n - 1) % n;
    Event first;
    first.is_write = target_is_write(spec.comm[prev]);
    first.loc = loc[prev];
    events[i].push_back(first);
    if (link_real(spec.links[i])) {
      Event second;
      second.is_write = source_is_write(spec.comm[i]);
      second.loc = loc[i];
      events[i].push_back(second);
    }
  }
  auto tgt_of = [&](std::size_t i) -> Event& {
    return events[(i + 1) % n].front();
  };
  auto src_of = [&](std::size_t i) -> Event& { return events[i].back(); };

  // Coherence values: within a same-location run the writes appear in
  // coherence order, so number them 1, 2, ... by appearance (initial value
  // is 0).  Runs are the maximal same-location stretches of comm edges.
  std::vector<int> final_value(static_cast<std::size_t>(num_locs), 0);
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i;
    while (j + 1 < n && loc[j + 1] == loc[i]) ++j;
    int next_value = 0;
    if (src_of(i).is_write) src_of(i).value = ++next_value;
    for (std::size_t k = i; k <= j; ++k) {
      if (tgt_of(k).is_write) tgt_of(k).value = ++next_value;
    }
    final_value[static_cast<std::size_t>(loc[i])] = next_value;
    i = j + 1;
  }

  // Read values: an Rfe target observes its source's value; an Fre source
  // observes the coherence predecessor of its target.
  for (std::size_t i = 0; i < n; ++i) {
    if (spec.comm[i] == CommEdge::Rfe) tgt_of(i).value = src_of(i).value;
    if (spec.comm[i] == CommEdge::Fre) src_of(i).value = tgt_of(i).value - 1;
  }

  // Registers, thread-major.
  int next_reg = 0;
  for (auto& th : events) {
    for (Event& e : th) {
      if (!e.is_write) e.reg = next_reg++;
    }
  }

  FamilyProgram out;
  out.spec = spec;
  out.test.num_vars = num_locs;
  out.test.num_regs = next_reg;
  for (std::size_t i = 0; i < n; ++i) {
    LitmusThread th;
    auto instr_for = [](const Event& e) {
      return e.is_write ? LitmusInstr::write(e.loc, e.value)
                        : LitmusInstr::read(e.reg, e.loc);
    };
    th.instrs.push_back(instr_for(events[i][0]));
    if (events[i].size() == 2) {
      const FamilyLink& l = spec.links[i];
      if (l.kind == LinkKind::Fence)
        th.instrs.push_back(LitmusInstr::barrier(l.fence));
      LitmusInstr second = instr_for(events[i][1]);
      const int src_reg = events[i][0].reg;
      if (l.kind == LinkKind::DepAddr) second.addr_dep = src_reg;
      if (l.kind == LinkKind::DepData) second.data_dep = src_reg;
      if (l.kind == LinkKind::DepCtrl) second.ctrl_dep = src_reg;
      th.instrs.push_back(second);
    }
    out.test.threads.push_back(std::move(th));
  }

  // Witness outcome: registers then final variable values.
  out.witness.assign(static_cast<std::size_t>(next_reg + num_locs), 0);
  for (const auto& th : events) {
    for (const Event& e : th) {
      if (!e.is_write) out.witness[static_cast<std::size_t>(e.reg)] = e.value;
    }
  }
  for (int v = 0; v < num_locs; ++v)
    out.witness[static_cast<std::size_t>(next_reg + v)] =
        final_value[static_cast<std::size_t>(v)];

  // Name: classic base when some rotation matches the table, systematic
  // spelling otherwise, then one "+annotation" per real link.
  std::string base;
  std::size_t rot = 0;
  for (const ClassicEntry& entry : kClassics) {
    if (std::string(entry.pattern).size() != n) continue;
    for (std::size_t r = 0; r < n && base.empty(); ++r) {
      bool match = true;
      for (std::size_t i = 0; i < n && match; ++i) {
        const std::size_t j = (i + r) % n;
        if (comm_char(spec.comm[j]) != entry.pattern[i]) match = false;
        const bool want_none = (entry.none_mask >> i) & 1u;
        if (link_real(spec.links[j]) == want_none) match = false;
      }
      if (match) {
        base = entry.name;
        rot = r;
      }
    }
    if (!base.empty()) break;
  }
  if (base.empty()) {
    base = "CY-";
    for (std::size_t i = 0; i < n; ++i) {
      if (!link_real(spec.links[i])) base += 'o';
      base += comm_char(spec.comm[i]);
    }
  }
  bool all_po = true;
  for (const FamilyLink& l : spec.links) {
    if (link_real(l) && l.kind != LinkKind::Po) all_po = false;
  }
  out.name = base;
  if (!all_po) {
    for (std::size_t i = 0; i < n; ++i) {
      const FamilyLink& l = spec.links[(i + rot) % n];
      if (link_real(l)) out.name += "+" + family_link_name(l);
    }
  }
  out.test.name = out.name;
  return out;
}

std::vector<FamilyProgram> generate_families(const FamilyOptions& options) {
  std::vector<FamilyProgram> out;
  std::set<std::string> seen_keys;
  std::set<std::string> seen_names;

  const int max_n = std::min(options.max_comm_edges, 4);
  for (int n = 2; n <= max_n; ++n) {
    // Comm patterns, lexicographic in (Rfe, Fre, Coe).
    const CommEdge kEdges[] = {CommEdge::Rfe, CommEdge::Fre, CommEdge::Coe};
    std::vector<std::size_t> pat(static_cast<std::size_t>(n), 0);
    for (bool more_pat = true; more_pat;) {
      FamilySpec spec;
      for (std::size_t p : pat) spec.comm.push_back(kEdges[p]);

      // None masks over links 1..n-1 (link 0 is always real).  Cycles of 4
      // comm edges are restricted to exactly two real links (IRIW shapes).
      for (unsigned mask = 0; mask < (1u << (n - 1)); ++mask) {
        const int nones = __builtin_popcount(mask);
        if (n - nones < 2) continue;
        if (n >= 4 && n - nones != 2) continue;
        spec.links.assign(static_cast<std::size_t>(n), FamilyLink{});
        for (int i = 1; i < n; ++i) {
          if ((mask >> (i - 1)) & 1u)
            spec.links[static_cast<std::size_t>(i)].kind = LinkKind::None;
        }
        if (!family_spec_valid(spec)) continue;  // type-compat of the mask

        // Annotation choices per real link.
        std::vector<std::size_t> real_idx;
        std::vector<std::vector<FamilyLink>> choices;
        for (int i = 0; i < n; ++i) {
          if (!link_real(spec.links[static_cast<std::size_t>(i)])) continue;
          real_idx.push_back(static_cast<std::size_t>(i));
          std::vector<FamilyLink> c = {FamilyLink{LinkKind::Po, FenceKind::None}};
          for (FenceKind f : options.fences)
            c.push_back(FamilyLink{LinkKind::Fence, f});
          if (options.include_deps) {
            const CommEdge prev =
                spec.comm[static_cast<std::size_t>((i + n - 1) % n)];
            if (!target_is_write(prev)) {
              c.push_back(FamilyLink{LinkKind::DepAddr, FenceKind::None});
              c.push_back(FamilyLink{LinkKind::DepCtrl, FenceKind::None});
              if (source_is_write(spec.comm[static_cast<std::size_t>(i)]))
                c.push_back(FamilyLink{LinkKind::DepData, FenceKind::None});
            }
          }
          choices.push_back(std::move(c));
        }

        // Odometer over the annotation product.
        std::vector<std::size_t> pick(choices.size(), 0);
        for (bool more = true; more;) {
          for (std::size_t k = 0; k < pick.size(); ++k)
            spec.links[real_idx[k]] = choices[k][pick[k]];
          if (family_spec_valid(spec)) {
            FamilyProgram prog = realize_family(spec);
            const std::string key = canonical_program_key(prog.test);
            if (!options.dedup || seen_keys.insert(key).second) {
              // Isomorphic rotations share a name; keep the first program
              // for a name even when structural dedup is off.
              if (seen_names.insert(prog.name).second) {
                out.push_back(std::move(prog));
                if (options.limit && out.size() >= options.limit) return out;
              }
            }
          }
          more = false;
          for (std::size_t k = pick.size(); k-- > 0;) {
            if (++pick[k] < choices[k].size()) {
              more = true;
              break;
            }
            pick[k] = 0;
          }
          if (pick.empty()) break;
        }
      }

      more_pat = false;
      for (std::size_t k = pat.size(); k-- > 0;) {
        if (++pat[k] < 3) {
          more_pat = true;
          break;
        }
        pat[k] = 0;
      }
    }
  }
  return out;
}

}  // namespace wmm::sim
