// Per-enumeration arena allocator and packed outcome set for the operational
// litmus executor's hot loop.
//
// One outcome enumeration touches thousands-to-millions of interleavings; the
// pre-rewrite executor paid a handful of `new`/`delete` pairs per
// interleaving (per-write visibility vectors, observed lists, the
// std::set<std::vector<int>> node per outcome probe).  The arena replaces all
// of that with bump allocation out of a chunk that is *reused* across
// enumerations: the first enumeration on a thread sizes the chunk, every
// later one of the same shape runs allocation-free.  Litmus-scale programs
// fit in the inline first chunk and never touch the heap at all.
//
// Lifetime rules (see docs/simulator.md, "Arena lifetime rules"):
//   - All allocations are trivially-destructible PODs; the arena never runs
//     destructors.
//   - `reset()` reclaims everything at once between programs.  Pointers from
//     before a reset are invalid.
//   - Within one cycle, every allocation stays valid until the reset even if
//     the arena grows (retired chunks are kept alive, not freed).
//   - After a reset the arena coalesces into a single chunk sized to the
//     cycle's high-water mark, so a steady-state workload settles into one
//     allocation-free chunk (pinned by
//     MachineRewrite.ArenaHighWaterStableAcrossReuse).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace wmm::sim {

struct ArenaStats {
  std::size_t reserved_bytes = 0;    // capacity currently held
  std::size_t high_water_bytes = 0;  // max bytes live in any one cycle
  std::uint64_t resets = 0;          // completed cycles
};

class Arena {
 public:
  // The arena starts bump-allocating out of `inline_chunk` (typically a
  // member array of the owning workspace) and only heap-allocates when a
  // cycle outgrows it.
  Arena(std::byte* inline_chunk, std::size_t inline_size)
      : inline_base_(inline_chunk),
        inline_size_(inline_size),
        base_(inline_chunk),
        cap_(inline_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // `n` default-initialised (i.e. uninitialised) Ts.  T must be trivial: the
  // arena runs no constructors or destructors.
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    const std::size_t align = alignof(T);
    std::size_t used = (used_ + align - 1) & ~(align - 1);
    const std::size_t bytes = n * sizeof(T);
    if (used + bytes > cap_) {
      grow_chunk(bytes + align);
      used = (used_ + align - 1) & ~(align - 1);
    }
    T* p = reinterpret_cast<T*>(base_ + used);
    used_ = used + bytes;
    return p;
  }

  // Zero-filled variant for index/floor tables.
  template <typename T>
  T* alloc_zero(std::size_t n) {
    T* p = alloc<T>(n);
    std::memset(static_cast<void*>(p), 0, n * sizeof(T));
    return p;
  }

  // Reclaim the whole cycle.  Retired overflow chunks are coalesced into one
  // chunk sized to the cycle's total, so the next cycle of the same shape is
  // a single allocation-free bump sequence.
  void reset() {
    const std::size_t cycle_bytes = retired_bytes_ + used_;
    if (cycle_bytes > stats_.high_water_bytes) {
      stats_.high_water_bytes = cycle_bytes;
    }
    ++stats_.resets;
    if (!retired_.empty()) {
      // Outgrew the current chunk this cycle: replace everything with one
      // chunk that would have fit the whole cycle.
      retired_.clear();
      retired_bytes_ = 0;
      if (cycle_bytes <= inline_size_) {
        heap_.reset();
        base_ = inline_base_;
        cap_ = inline_size_;
      } else {
        const std::size_t want = cycle_bytes + cycle_bytes / 2;
        heap_ = std::make_unique<std::byte[]>(want);
        base_ = heap_.get();
        cap_ = want;
      }
    }
    used_ = 0;
    stats_.reserved_bytes = cap_;
  }

  ArenaStats stats() const {
    ArenaStats s = stats_;
    s.reserved_bytes = cap_;
    return s;
  }

 private:
  void grow_chunk(std::size_t need) {
    // Retire the current chunk (allocations in it stay live until reset).
    if (base_ != inline_base_) {
      retired_.push_back(std::move(heap_));
    }
    retired_bytes_ += used_;
    const std::size_t want = need > cap_ * 2 ? need : cap_ * 2;
    heap_ = std::make_unique<std::byte[]>(want);
    base_ = heap_.get();
    cap_ = want;
    used_ = 0;
  }

  std::byte* inline_base_;
  std::size_t inline_size_;
  std::byte* base_;
  std::size_t cap_;
  std::size_t used_ = 0;
  std::unique_ptr<std::byte[]> heap_;  // current heap chunk, if any
  std::vector<std::unique_ptr<std::byte[]>> retired_;
  std::size_t retired_bytes_ = 0;
  ArenaStats stats_;
};

// Growable POD array over an arena (size/capacity in elements).  Growth
// copy-allocates; the old span is arena garbage until the next reset, which
// is the deal the executor signs: capacities are sized up-front on the hot
// path so growth only happens while a shape is first seen.
template <typename T>
class ArenaVec {
 public:
  void init(Arena& arena, std::size_t capacity) {
    data_ = arena.alloc<T>(capacity ? capacity : 1);
    cap_ = capacity ? capacity : 1;
    size_ = 0;
  }
  void clear() { size_ = 0; }
  void push_back(Arena& arena, T v) {
    if (size_ == cap_) {
      T* bigger = arena.alloc<T>(cap_ * 2);
      std::memcpy(static_cast<void*>(bigger), data_, size_ * sizeof(T));
      data_ = bigger;
      cap_ *= 2;
    }
    data_[size_++] = v;
  }
  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

// Deduplicating set of fixed-width int32 tuples (packed outcomes), open
// addressing over arena storage.  Distinct entries are appended to a flat
// pool (`entry(i)` = i-th distinct outcome in first-seen order); the hash
// table stores pool indices.  Replaces std::set<std::vector<int>> on the
// per-interleaving path: no node allocation, no per-probe vector compare
// through two pointer hops.
class PackedOutcomeSet {
 public:
  void init(Arena& arena, std::uint32_t width) {
    arena_ = &arena;
    width_ = width;
    count_ = 0;
    pool_cap_ = 64;
    pool_ = arena.alloc<std::int32_t>(static_cast<std::size_t>(pool_cap_) *
                                      (width_ ? width_ : 1));
    table_mask_ = 127;
    table_ = arena.alloc_zero<std::uint32_t>(table_mask_ + 1);
  }

  // Insert the `width()` ints at `v`; returns true when the tuple is new.
  bool insert(const std::int32_t* v) {
    const std::uint64_t h = hash(v);
    std::size_t slot = static_cast<std::size_t>(h) & table_mask_;
    while (true) {
      const std::uint32_t e = table_[slot];
      if (e == 0) break;
      const std::int32_t* stored =
          pool_ + static_cast<std::size_t>(e - 1) * width_;
      if (width_ == 0 ||
          std::memcmp(stored, v, width_ * sizeof(std::int32_t)) == 0) {
        return false;
      }
      slot = (slot + 1) & table_mask_;
    }
    if (count_ == pool_cap_) grow_pool();
    std::memcpy(pool_ + static_cast<std::size_t>(count_) * width_, v,
                width_ * sizeof(std::int32_t));
    table_[slot] = ++count_;
    if (static_cast<std::size_t>(count_) * 10 > (table_mask_ + 1) * 7) {
      rehash();
    }
    return true;
  }

  std::uint32_t size() const { return count_; }
  std::uint32_t width() const { return width_; }
  const std::int32_t* entry(std::uint32_t i) const {
    return pool_ + static_cast<std::size_t>(i) * width_;
  }

 private:
  std::uint64_t hash(const std::int32_t* v) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the int columns
    for (std::uint32_t i = 0; i < width_; ++i) {
      h ^= static_cast<std::uint32_t>(v[i]);
      h *= 0x100000001b3ULL;
    }
    h ^= h >> 32;
    return h;
  }

  void grow_pool() {
    std::int32_t* bigger = arena_->alloc<std::int32_t>(
        static_cast<std::size_t>(pool_cap_) * 2 * (width_ ? width_ : 1));
    std::memcpy(bigger, pool_,
                static_cast<std::size_t>(count_) * width_ * sizeof(std::int32_t));
    pool_ = bigger;
    pool_cap_ *= 2;
  }

  void rehash() {
    const std::size_t new_size = (table_mask_ + 1) * 2;
    table_ = arena_->alloc_zero<std::uint32_t>(new_size);
    table_mask_ = new_size - 1;
    for (std::uint32_t e = 1; e <= count_; ++e) {
      const std::int32_t* v = pool_ + static_cast<std::size_t>(e - 1) * width_;
      std::size_t slot = static_cast<std::size_t>(hash(v)) & table_mask_;
      while (table_[slot] != 0) slot = (slot + 1) & table_mask_;
      table_[slot] = e;
    }
  }

  Arena* arena_ = nullptr;
  std::uint32_t width_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t pool_cap_ = 0;
  std::int32_t* pool_ = nullptr;
  std::size_t table_mask_ = 0;
  std::uint32_t* table_ = nullptr;
};

}  // namespace wmm::sim
