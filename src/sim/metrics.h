// Counter slots for the timing simulator's observability hooks.
//
// All simulator events feed the process-global obs::CounterRegistry under a
// "sim." prefix: fence executions per FenceKind, store-buffer traffic and
// pressure, invalidation-queue activity, coherence directory / bus
// transactions, and branch-predictor outcomes.  Slots are registered lazily
// on first use; the hot-path cost of a hook is one relaxed atomic add.
#pragma once

#include <cstdint>

#include "obs/counters.h"
#include "sim/fence.h"

namespace wmm::sim {

struct SimCounterIds {
  // One counter per FenceKind, "sim.fence.<name>" (None/CompilerOnly
  // included: they are code-path executions even when no instruction is
  // emitted).
  obs::CounterId fence[kNumFenceKinds];

  obs::CounterId sb_stores;          // stores retired into a store buffer
  obs::CounterId sb_full_stalls;     // pushes that back-pressured the core
  obs::CounterId sb_occupancy_hwm;   // gauge: peak buffered entries
  obs::CounterId sb_drain_flushes;   // fences that exposed a non-empty drain

  obs::CounterId invq_received;      // invalidations landing in a queue
  obs::CounterId invq_drains;        // queue drains forced by fences/acquires
  obs::CounterId invq_drained;       // entries acknowledged by those drains

  obs::CounterId bus_transactions;   // bus reservations (transfers)
  obs::CounterId coh_misses;         // loads hitting a line modified elsewhere
  obs::CounterId coh_transfers;      // stores taking ownership from elsewhere
  obs::CounterId coh_invalidations;  // invalidation messages sent

  obs::CounterId branches;
  obs::CounterId branch_mispredicts;

  obs::CounterId machine_runs;       // Machine::run invocations
  obs::CounterId stw_pauses;         // stop-the-world stalls (GC)
};

// The lazily-registered slot table (one per process).
const SimCounterIds& sim_counters();

}  // namespace wmm::sim
