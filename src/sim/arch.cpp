#include "sim/arch.h"

namespace wmm::sim {

const char* arch_name(Arch arch) {
  switch (arch) {
    case Arch::ARMV8: return "arm";
    case Arch::POWER7: return "power";
    case Arch::X86_TSO: return "x86";
    case Arch::SC: return "sc";
  }
  return "?";
}

ArchParams arm_v8_params() {
  ArchParams p;
  p.arch = Arch::ARMV8;
  p.num_cores = 8;
  // X-Gene 1 @ 2.4 GHz: one cycle ~ 0.42 ns; the narrow front end retires
  // roughly one nop per cycle, which is why the nop placeholders cost more
  // on ARM than on the wide POWER7 core (paper: mean 1.9% vs 0.7%).
  p.nop_ns = 0.42;
  p.branch_ns = 0.42;
  p.mispredict_ns = 13.0;
  p.pipeline_flush_ns = 23.5;
  p.cost_loop_iter_ns = 0.55;
  p.cost_loop_startup_ns = 1.4;
  p.cost_loop_spill_ns = 2.6;
  p.scratch_register_available = false;  // kernel context; JVM overrides
  return p;
}

ArchParams power7_params() {
  ArchParams p;
  p.arch = Arch::POWER7;
  p.num_cores = 12;
  // POWER7 @ 3.7 GHz: one cycle ~ 0.27 ns; deeper fences.
  p.nop_ns = 0.14;
  p.branch_ns = 0.27;
  p.mispredict_ns = 9.5;
  p.pipeline_flush_ns = 18.0;
  p.load_l1_ns = 1.1;
  p.load_l2_ns = 6.5;
  p.load_mem_ns = 105.0;
  p.sb_capacity = 32;
  p.sb_drain_ns = 1.6;
  p.lwsync_base_ns = 5.9;       // calibration target: ~6.1 ns in vitro
  p.hwsync_base_ns = 18.3;      // calibration target: ~18.9 ns in vitro
  p.lwsync_sb_factor = 0.30;
  p.hwsync_sb_factor = 0.34;
  p.cost_loop_iter_ns = 0.82;   // cmpwi+addi+bne dependent chain
  p.cost_loop_startup_ns = 1.8;
  p.cost_loop_spill_ns = 3.1;
  p.scratch_register_available = false;  // always spills (Figure 3)
  // SMT interference drives the instability of xalan/tomcat/sunflow that the
  // paper observes on POWER.
  p.smt_phase_probability = 0.18;
  p.smt_phase_slowdown = 1.09;
  return p;
}

ArchParams x86_tso_params() {
  ArchParams p;
  p.arch = Arch::X86_TSO;
  p.num_cores = 8;
  p.nop_ns = 0.12;
  p.branch_ns = 0.3;
  p.mispredict_ns = 10.0;
  p.pipeline_flush_ns = 20.0;
  p.mfence_base_ns = 5.5;
  p.cost_loop_iter_ns = 0.35;
  p.cost_loop_startup_ns = 1.0;
  p.cost_loop_spill_ns = 1.8;
  p.scratch_register_available = true;
  return p;
}

ArchParams sc_params() {
  ArchParams p = x86_tso_params();
  p.arch = Arch::SC;
  // An idealised SC machine orders every access; fences are free because the
  // machine never reorders in the first place.
  p.dmb_base_ns = 0.0;
  p.dmb_ish_extra_ns = 0.0;
  p.lwsync_base_ns = 0.0;
  p.hwsync_base_ns = 0.0;
  p.mfence_base_ns = 0.0;
  return p;
}

ArchParams params_for(Arch arch) {
  switch (arch) {
    case Arch::ARMV8: return arm_v8_params();
    case Arch::POWER7: return power7_params();
    case Arch::X86_TSO: return x86_tso_params();
    case Arch::SC: return sc_params();
  }
  return arm_v8_params();
}

}  // namespace wmm::sim
