#include "sim/causal.h"

namespace wmm::sim {

namespace {

// Executes one program instruction per scheduler step, so cross-thread
// perturbations interleave at instruction granularity.
class ProgramThread final : public SimThread {
 public:
  ProgramThread(const Program& program, Machine& machine, FenceKind watch,
                double delay_others_ns)
      : program_(program),
        machine_(machine),
        watch_(watch),
        delay_others_ns_(delay_others_ns) {}

  bool step(Cpu& cpu) override {
    if (index_ >= program_.instrs().size()) return false;
    const ProgInstr& i = program_.instrs()[index_++];
    Program one({i});
    one.run(cpu);
    if (delay_others_ns_ > 0.0 && cpu.index() == 0 && i.op == ProgOp::Fence &&
        i.fence == watch_) {
      // Virtual speedup of this site: everyone else loses the same time.
      for (unsigned c = 0; c < machine_.num_cpus(); ++c) {
        if (static_cast<int>(c) != cpu.index()) {
          machine_.cpu(c).advance(delay_others_ns_);
        }
      }
    }
    return true;
  }

 private:
  const Program& program_;
  Machine& machine_;
  FenceKind watch_;
  double delay_others_ns_;
  std::size_t index_ = 0;
};

double run_with_delay(const ArchParams& params,
                      const std::vector<Program>& programs, FenceKind kind,
                      double delay_ns) {
  Machine machine(params);
  std::vector<std::unique_ptr<ProgramThread>> threads;
  std::vector<SimThread*> raw;
  for (const Program& p : programs) {
    threads.push_back(
        std::make_unique<ProgramThread>(p, machine, kind, delay_ns));
    raw.push_back(threads.back().get());
  }
  return machine.run(raw);
}

}  // namespace

double run_programs(Machine& machine, const std::vector<Program>& programs) {
  std::vector<std::unique_ptr<ProgramThread>> threads;
  std::vector<SimThread*> raw;
  for (const Program& p : programs) {
    threads.push_back(std::make_unique<ProgramThread>(
        p, machine, FenceKind::None, 0.0));
    raw.push_back(threads.back().get());
  }
  return machine.run(raw);
}

CausalEstimate causal_virtual_speedup(const ArchParams& params,
                                      const std::vector<Program>& programs,
                                      FenceKind kind,
                                      double virtual_speedup_ns) {
  CausalEstimate e;
  e.baseline_ns = run_with_delay(params, programs, kind, 0.0);
  e.perturbed_ns = run_with_delay(params, programs, kind, virtual_speedup_ns);
  return e;
}

CausalEstimate cost_function_slowdown(const ArchParams& params,
                                      const std::vector<Program>& programs,
                                      FenceKind kind, std::uint32_t iterations,
                                      bool spill) {
  // Mirror the causal experiment: the code path under study is thread 0's;
  // only its program receives the injection (base keeps nop padding).
  std::vector<Program> bases = programs, tests = programs;
  if (!programs.empty()) {
    Program base, test;
    BinaryRewriter::inject_cost_function(programs[0], kind, iterations, spill,
                                         base, test);
    bases[0] = std::move(base);
    tests[0] = std::move(test);
  }
  CausalEstimate e;
  e.baseline_ns = run_with_delay(params, bases, kind, 0.0);
  e.perturbed_ns = run_with_delay(params, tests, kind, 0.0);
  return e;
}

}  // namespace wmm::sim
