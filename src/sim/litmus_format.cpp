#include "sim/litmus_format.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace wmm::sim {

namespace {

// x86 register names indexed by *global* register id (thread-major dense
// numbering makes the mapping stable across the file).
const char* const kX86Regs[] = {"EAX", "EBX",  "ECX",  "EDX",  "ESI",
                                "EDI", "R8D",  "R9D",  "R10D", "R11D",
                                "R12D", "R13D", "R14D", "R15D"};
constexpr int kNumX86Regs = 14;

// Short architecture names used by the wmm-expect directive, in the fixed
// emission order sc, tso, arm, power.
const Arch kExpectOrder[] = {Arch::SC, Arch::X86_TSO, Arch::ARMV8,
                             Arch::POWER7};

const char* arch_short(Arch arch) {
  switch (arch) {
    case Arch::SC: return "sc";
    case Arch::X86_TSO: return "tso";
    case Arch::ARMV8: return "arm";
    case Arch::POWER7: return "power";
  }
  return "?";
}

std::optional<Arch> arch_from_short(const std::string& name) {
  for (Arch a : kExpectOrder) {
    if (name == arch_short(a)) return a;
  }
  return std::nullopt;
}

bool is_read(const LitmusInstr& in) { return in.type == AccessType::Read; }
bool is_write(const LitmusInstr& in) { return in.type == AccessType::Write; }
bool is_fence(const LitmusInstr& in) { return in.type == AccessType::Fence; }

// The thread that loads global register `reg`, or -1.
int reg_owner(const LitmusTest& test, int reg) {
  for (std::size_t t = 0; t < test.threads.size(); ++t) {
    for (const LitmusInstr& in : test.threads[t].instrs) {
      if (is_read(in) && in.reg == reg) return static_cast<int>(t);
    }
  }
  return -1;
}

// AArch64 fence spellings.  CtrlIsb is handled separately (CBNZ+label+ISB
// idiom); the SYNC/LWSYNC/ISYNC/MFENCE entries are the documented extension
// mnemonics for the cross-ISA fence kinds the fuzzer mixes in.
std::optional<std::string> aarch64_fence_spelling(FenceKind kind) {
  switch (kind) {
    case FenceKind::DmbIsh: return "DMB ISH";
    case FenceKind::DmbIshLd: return "DMB ISHLD";
    case FenceKind::DmbIshSt: return "DMB ISHST";
    case FenceKind::DsbSy: return "DSB SY";
    case FenceKind::Isb: return "ISB";
    case FenceKind::Nop: return "NOP";
    case FenceKind::HwSync: return "SYNC";
    case FenceKind::LwSync: return "LWSYNC";
    case FenceKind::ISync: return "ISYNC";
    case FenceKind::Mfence: return "MFENCE";
    default: return std::nullopt;
  }
}

// Scratch registers an instruction consumes when printed in AArch64: one for
// the value of every store, one per address-dependency EOR.
int scratch_needed(const LitmusInstr& in) {
  if (is_write(in)) return 1 + (in.addr_dep >= 0 ? 1 : 0);
  if (is_read(in)) return in.addr_dep >= 0 ? 1 : 0;
  return 0;
}

// Why `test` cannot be printed in `dialect`, or nullopt when it can.
std::optional<std::string> unprintable_reason(const LitmusTest& test,
                                              LitmusDialect dialect) {
  if (test.name.empty()) return "test has no name";
  if (test.threads.empty()) return "test has no threads";
  if (test.num_vars <= 0) return "test has no variables";

  // Registers must be loaded exactly once each (global numbering) and dense:
  // the printed file only records loads, so num_regs must be recoverable as
  // max load target + 1.
  std::vector<int> load_count(static_cast<std::size_t>(test.num_regs), 0);
  int max_reg = -1;
  for (const LitmusThread& th : test.threads) {
    std::vector<int> loaded_here;
    for (const LitmusInstr& in : th.instrs) {
      if (is_read(in) || is_write(in)) {
        if (in.var < 0 || in.var >= test.num_vars)
          return "instruction references a variable out of range";
      }
      if (is_read(in)) {
        if (in.reg < 0 || in.reg >= test.num_regs)
          return "load target register out of range";
        ++load_count[static_cast<std::size_t>(in.reg)];
        max_reg = std::max(max_reg, in.reg);
        if (in.data_dep >= 0) return "data dependency on a load";
        if (in.release) return "release flag on a load";
      }
      if (is_write(in) && in.acquire) return "acquire flag on a store";
      for (int dep : {in.addr_dep, in.data_dep, in.ctrl_dep}) {
        if (dep < 0) continue;
        if (is_fence(in) && in.fence != FenceKind::CtrlIsb)
          return "dependency annotation on a fence";
        if (std::find(loaded_here.begin(), loaded_here.end(), dep) ==
            loaded_here.end())
          return "dependency on a register not previously loaded in the "
                 "same thread";
      }
      if (is_read(in)) loaded_here.push_back(in.reg);
    }
  }
  for (int c : load_count) {
    if (c != 1) return "registers must be loaded exactly once each";
  }
  if (max_reg + 1 != test.num_regs)
    return "register numbering is not dense";

  if (dialect == LitmusDialect::X86) {
    if (test.num_regs > kNumX86Regs)
      return "too many registers for the x86 register file";
    int next = 0;
    for (const LitmusThread& th : test.threads) {
      for (const LitmusInstr& in : th.instrs) {
        if (is_fence(in)) {
          if (in.fence != FenceKind::Mfence && in.fence != FenceKind::Nop)
            return std::string("fence '") + fence_name(in.fence) +
                   "' has no x86 spelling";
          continue;
        }
        if (in.addr_dep >= 0 || in.data_dep >= 0 || in.ctrl_dep >= 0)
          return "x86 dialect cannot express dependencies";
        if (in.acquire || in.release)
          return "x86 dialect cannot express acquire/release accesses";
        if (is_read(in) && in.reg != next++)
          return "x86 dialect requires thread-major register numbering";
      }
    }
  } else {
    int max_scratch = 0;
    for (const LitmusThread& th : test.threads) {
      int need = 0;
      for (const LitmusInstr& in : th.instrs) {
        need += scratch_needed(in);
        if (is_fence(in) && in.fence != FenceKind::CtrlIsb &&
            !aarch64_fence_spelling(in.fence)) {
          return std::string("fence '") + fence_name(in.fence) +
                 "' has no instruction spelling";
        }
      }
      max_scratch = std::max(max_scratch, need);
    }
    // W0..W<num_regs-1> data, then per-thread scratch, then X registers for
    // variable addresses; X29/X30 stay reserved.
    const int addr_base = test.num_regs + max_scratch;
    if (addr_base + test.num_vars - 1 > 28)
      return "register budget exceeded (needs X" +
             std::to_string(addr_base + test.num_vars - 1) + ")";
  }
  return std::nullopt;
}

// Pads `cells` column-wise and joins rows " c | c ;".
std::string layout_columns(const std::vector<std::vector<std::string>>& cols) {
  std::size_t rows = 0;
  std::vector<std::size_t> width(cols.size(), 0);
  for (std::size_t t = 0; t < cols.size(); ++t) {
    rows = std::max(rows, cols[t].size());
    for (const std::string& c : cols[t]) width[t] = std::max(width[t], c.size());
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t t = 0; t < cols.size(); ++t) {
      const std::string& c = r < cols[t].size() ? cols[t][r] : std::string();
      os << ' ' << c << std::string(width[t] - c.size(), ' ') << ' ';
      os << (t + 1 == cols.size() ? ';' : '|');
    }
    os << '\n';
  }
  return os.str();
}

std::string format_cond_atom(const LitmusFile& file, const LitmusCondAtom& a) {
  std::ostringstream os;
  if (a.is_reg) {
    os << a.thread << ':';
    if (file.dialect == LitmusDialect::X86) {
      os << kX86Regs[a.index];
    } else {
      os << 'W' << a.index;
    }
  } else {
    os << litmus_var_name(a.index);
  }
  os << '=' << a.value;
  return os.str();
}

}  // namespace

const char* litmus_dialect_name(LitmusDialect dialect) {
  return dialect == LitmusDialect::X86 ? "X86" : "AArch64";
}

std::string litmus_var_name(int var) {
  static const char* const kNames[] = {"x", "y", "z", "u"};
  if (var >= 0 && var < 4) return kNames[var];
  return "v" + std::to_string(var);
}

std::optional<int> litmus_var_index(const std::string& name) {
  static const char* const kNames[] = {"x", "y", "z", "u"};
  for (int i = 0; i < 4; ++i) {
    if (name == kNames[i]) return i;
  }
  if (name.size() >= 2 && name[0] == 'v') {
    int value = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) return std::nullopt;
      value = value * 10 + (name[i] - '0');
    }
    if (value >= 4) return value;
  }
  return std::nullopt;
}

LitmusParseError::LitmusParseError(int line, int col, const std::string& message)
    : std::runtime_error("line " + std::to_string(line) + ", col " +
                         std::to_string(col) + ": " + message),
      line_(line),
      col_(col),
      detail_(message) {}

bool printable_as(const LitmusTest& test, LitmusDialect dialect) {
  return !unprintable_reason(test, dialect).has_value();
}

std::string print_litmus(const LitmusFile& file) {
  if (auto reason = unprintable_reason(file.test, file.dialect)) {
    throw std::invalid_argument("cannot print '" + file.test.name + "' as " +
                                litmus_dialect_name(file.dialect) + ": " +
                                *reason);
  }
  const LitmusTest& test = file.test;
  std::ostringstream os;
  os << litmus_dialect_name(file.dialect) << ' ' << test.name << '\n';
  if (!file.expected.empty()) {
    os << "(* wmm-expect:";
    for (Arch a : kExpectOrder) {
      auto it = file.expected.find(a);
      if (it == file.expected.end()) continue;
      os << ' ' << arch_short(a) << '=' << (it->second ? "allow" : "forbid");
    }
    os << " *)\n";
  }

  // Variables each thread touches, for the address-register bindings.
  std::vector<std::vector<int>> thread_vars(test.threads.size());
  for (std::size_t t = 0; t < test.threads.size(); ++t) {
    std::vector<bool> used(static_cast<std::size_t>(test.num_vars), false);
    for (const LitmusInstr& in : test.threads[t].instrs) {
      if (!is_fence(in)) used[static_cast<std::size_t>(in.var)] = true;
    }
    for (int v = 0; v < test.num_vars; ++v) {
      if (used[static_cast<std::size_t>(v)]) thread_vars[t].push_back(v);
    }
  }

  int max_scratch = 0;
  for (const LitmusThread& th : test.threads) {
    int need = 0;
    for (const LitmusInstr& in : th.instrs) need += scratch_needed(in);
    max_scratch = std::max(max_scratch, need);
  }
  const int scratch_base = test.num_regs;
  const int addr_base = scratch_base + max_scratch;
  auto addr_reg = [&](int var) { return addr_base + var; };

  if (file.dialect == LitmusDialect::X86) {
    os << "{ ";
    for (int v = 0; v < test.num_vars; ++v)
      os << litmus_var_name(v) << "=0; ";
    os << "}\n";
  } else {
    os << "{\n";
    for (int v = 0; v < test.num_vars; ++v)
      os << litmus_var_name(v) << "=0;" << (v + 1 == test.num_vars ? "" : " ");
    os << '\n';
    for (std::size_t t = 0; t < test.threads.size(); ++t) {
      if (thread_vars[t].empty()) continue;
      for (std::size_t i = 0; i < thread_vars[t].size(); ++i) {
        const int v = thread_vars[t][i];
        os << t << ":X" << addr_reg(v) << '=' << litmus_var_name(v) << ';'
           << (i + 1 == thread_vars[t].size() ? "" : " ");
      }
      os << '\n';
    }
    os << "}\n";
  }

  // Program columns.
  std::vector<std::vector<std::string>> cols(test.threads.size());
  int label_counter = 0;  // global across threads, in thread order
  for (std::size_t t = 0; t < test.threads.size(); ++t) {
    cols[t].push_back("P" + std::to_string(t));
    int scratch = scratch_base;
    int last_read = -1;
    auto emit_ctrl = [&](int reg) {
      const int n = label_counter++;
      cols[t].push_back("CBNZ W" + std::to_string(reg) + ",LC" +
                        std::to_string(n));
      cols[t].push_back("LC" + std::to_string(n) + ":");
    };
    for (const LitmusInstr& in : test.threads[t].instrs) {
      if (is_fence(in)) {
        if (in.fence == FenceKind::CtrlIsb) {
          const int reg = in.ctrl_dep >= 0 ? in.ctrl_dep : last_read;
          if (reg >= 0) {
            emit_ctrl(reg);
            cols[t].push_back("ISB");
          } else {
            cols[t].push_back("CTRLISB");
          }
        } else {
          cols[t].push_back(*aarch64_fence_spelling(in.fence));
        }
        continue;
      }
      if (file.dialect == LitmusDialect::X86) {
        if (is_read(in)) {
          cols[t].push_back(std::string("MOV ") + kX86Regs[in.reg] + ",[" +
                            litmus_var_name(in.var) + "]");
        } else {
          cols[t].push_back("MOV [" + litmus_var_name(in.var) + "],$" +
                            std::to_string(in.value));
        }
        if (is_read(in)) last_read = in.reg;
        continue;
      }
      if (in.ctrl_dep >= 0) emit_ctrl(in.ctrl_dep);
      const std::string xv = "X" + std::to_string(addr_reg(in.var));
      if (is_read(in)) {
        std::string mem = "[" + xv + "]";
        if (in.addr_dep >= 0) {
          const int s = scratch++;
          cols[t].push_back("EOR W" + std::to_string(s) + ",W" +
                            std::to_string(in.addr_dep) + ",W" +
                            std::to_string(in.addr_dep));
          mem = "[" + xv + ",W" + std::to_string(s) + ",SXTW]";
        }
        cols[t].push_back((in.acquire ? "LDAR W" : "LDR W") +
                          std::to_string(in.reg) + "," + mem);
        last_read = in.reg;
      } else {
        const int v = scratch++;
        if (in.data_dep >= 0) {
          cols[t].push_back("EOR W" + std::to_string(v) + ",W" +
                            std::to_string(in.data_dep) + ",W" +
                            std::to_string(in.data_dep));
          cols[t].push_back("ADD W" + std::to_string(v) + ",W" +
                            std::to_string(v) + ",#" +
                            std::to_string(in.value));
        } else {
          cols[t].push_back("MOV W" + std::to_string(v) + ",#" +
                            std::to_string(in.value));
        }
        std::string mem = "[" + xv + "]";
        if (in.addr_dep >= 0) {
          const int u = scratch++;
          cols[t].push_back("EOR W" + std::to_string(u) + ",W" +
                            std::to_string(in.addr_dep) + ",W" +
                            std::to_string(in.addr_dep));
          mem = "[" + xv + ",W" + std::to_string(u) + ",SXTW]";
        }
        cols[t].push_back((in.release ? "STLR W" : "STR W") +
                          std::to_string(v) + "," + mem);
      }
    }
  }
  os << layout_columns(cols);

  os << (file.negated ? "~exists (" : "exists (");
  for (std::size_t i = 0; i < file.condition.size(); ++i) {
    if (i) os << " /\\ ";
    os << format_cond_atom(file, file.condition[i]);
  }
  os << ")\n";
  return os.str();
}

LitmusFile to_litmus_file(const LitmusTest& test, const Outcome& witness,
                          std::optional<LitmusDialect> force) {
  if (static_cast<int>(witness.size()) != test.num_regs + test.num_vars) {
    throw std::invalid_argument(
        "witness outcome size does not match registers + variables of '" +
        test.name + "'");
  }
  LitmusFile file;
  file.dialect = force ? *force
                       : (printable_as(test, LitmusDialect::X86)
                              ? LitmusDialect::X86
                              : LitmusDialect::AArch64);
  file.test = test;
  for (int r = 0; r < test.num_regs; ++r) {
    const int owner = reg_owner(test, r);
    if (owner < 0) {
      throw std::invalid_argument("register W" + std::to_string(r) +
                                  " of '" + test.name + "' is never loaded");
    }
    file.condition.push_back(
        {/*is_reg=*/true, owner, r, witness[static_cast<std::size_t>(r)]});
  }
  for (int v = 0; v < test.num_vars; ++v) {
    file.condition.push_back(
        {/*is_reg=*/false, -1, v,
         witness[static_cast<std::size_t>(test.num_regs + v)]});
  }
  return file;
}

LitmusFile to_litmus_file(const LitmusCase& c,
                          std::optional<LitmusDialect> force) {
  LitmusFile file = to_litmus_file(c.test, c.relaxed_outcome, force);
  for (Arch a : kExpectOrder) {
    if (auto e = expected_allowed(c, a)) file.expected[a] = *e;
  }
  return file;
}

bool condition_holds(const LitmusFile& file, const Outcome& outcome) {
  for (const LitmusCondAtom& a : file.condition) {
    const int idx = a.is_reg ? a.index : file.test.num_regs + a.index;
    if (idx < 0 || idx >= static_cast<int>(outcome.size())) return false;
    if (outcome[static_cast<std::size_t>(idx)] != a.value) return false;
  }
  return true;
}

bool condition_reachable(const LitmusFile& file,
                         const std::set<Outcome>& outcomes) {
  return std::any_of(outcomes.begin(), outcomes.end(),
                     [&](const Outcome& o) { return condition_holds(file, o); });
}

}  // namespace wmm::sim

// ---------------------------------------------------------------------------
// Parsing.

namespace wmm::sim {
namespace {

struct Pos {
  int line = 1;
  int col = 1;
};

[[noreturn]] void fail(Pos p, const std::string& msg) {
  throw LitmusParseError(p.line, p.col, msg);
}

// A source character with its original position (comment stripping blanks
// characters in place, so positions survive).
struct Ch {
  char c;
  Pos pos;
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_blank(const std::string& s) { return trim(s).empty(); }

long parse_long(const std::string& s, Pos p, const char* what) {
  if (s.empty()) fail(p, std::string("expected ") + what);
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) fail(p, std::string("expected ") + what);
  long value = 0;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i])))
      fail(p, std::string("expected ") + what + ", got '" + s + "'");
    value = value * 10 + (s[i] - '0');
    if (value > 1000000000) fail(p, std::string(what) + " out of range");
  }
  return s[0] == '-' ? -value : value;
}

// Strips `(* ... *)` comments (nestable) in place, collecting their text.
// Returns the stripped source split into lines.
std::vector<std::string> strip_comments(
    const std::string& text, std::vector<std::pair<Pos, std::string>>* comments) {
  std::string out = text;
  int depth = 0;
  Pos pos{1, 1}, start{1, 1};
  std::string current;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool open = c == '(' && i + 1 < out.size() && out[i + 1] == '*';
    const bool close = c == '*' && i + 1 < out.size() && out[i + 1] == ')';
    if (depth == 0 && open) {
      start = pos;
      depth = 1;
      current.clear();
      out[i] = ' ';
    } else if (depth > 0 && open) {
      ++depth;
      current += "(*";
      out[i + 1] = ' ';  // consumed below via loop body; blank both
      out[i] = ' ';
      // skip the '*' explicitly
      ++pos.col;
      ++i;
      ++pos.col;
      continue;
    } else if (depth > 0 && close) {
      --depth;
      if (depth == 0) {
        comments->emplace_back(start, current);
      } else {
        current += "*)";
      }
      out[i] = ' ';
      out[i + 1] = ' ';
      ++pos.col;
      ++i;
      ++pos.col;
      continue;
    } else if (depth == 0 && close) {
      fail(pos, "unmatched '*)'");
    } else if (depth > 0) {
      current += c;
      if (c != '\n') out[i] = ' ';
    }
    if (depth == 1 && open) {
      // blank the '*' of the opener too
      ++pos.col;
      ++i;
      out[i] = ' ';
    }
    if (out[i] == '\n' || c == '\n') {
      ++pos.line;
      pos.col = 1;
    } else {
      ++pos.col;
    }
  }
  if (depth > 0) fail(start, "unterminated comment");
  std::vector<std::string> lines;
  std::string line;
  for (char c : out) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  lines.push_back(line);
  return lines;
}

// Splits an operand string on top-level commas (commas inside [...] do not
// split).  Returns trimmed pieces.
std::vector<std::string> split_ops(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : s) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!trim(cur).empty() || !out.empty()) out.push_back(trim(cur));
  return out;
}

int parse_prefixed_reg(const std::string& s, char prefix, Pos p) {
  if (s.size() < 2 || s[0] != prefix)
    fail(p, std::string("expected a ") + prefix + " register, got '" + s + "'");
  return static_cast<int>(parse_long(s.substr(1), p, "register number"));
}

int parse_imm(const std::string& s, Pos p) {
  if (s.empty() || s[0] != '#')
    fail(p, "expected an immediate '#value', got '" + s + "'");
  return static_cast<int>(parse_long(s.substr(1), p, "immediate"));
}

struct MemOperand {
  int xreg = -1;
  int index_wreg = -1;  // -1: plain [Xn]
};

MemOperand parse_mem(const std::string& s, Pos p) {
  if (s.size() < 2 || s.front() != '[' || s.back() != ']')
    fail(p, "expected a memory operand '[Xn]', got '" + s + "'");
  const std::vector<std::string> parts = split_ops(s.substr(1, s.size() - 2));
  MemOperand mem;
  if (parts.size() == 1) {
    mem.xreg = parse_prefixed_reg(parts[0], 'X', p);
  } else if (parts.size() == 3 && parts[2] == "SXTW") {
    mem.xreg = parse_prefixed_reg(parts[0], 'X', p);
    mem.index_wreg = parse_prefixed_reg(parts[1], 'W', p);
  } else {
    fail(p, "malformed memory operand '" + s + "'");
  }
  return mem;
}

std::optional<int> x86_reg_index(const std::string& name) {
  for (int i = 0; i < kNumX86Regs; ++i) {
    if (name == kX86Regs[i]) return i;
  }
  return std::nullopt;
}

struct Cell {
  std::string text;  // trimmed
  Pos pos;           // of the first non-space character
};

// A declared-variable table: name -> index, built from the init block.
struct VarTable {
  std::map<std::string, int> index;
  int num_vars = 0;

  std::optional<int> find(const std::string& name) const {
    auto it = index.find(name);
    if (it == index.end()) return std::nullopt;
    return it->second;
  }
};

// Scratch-value tracking while decoding one thread's assembly.
struct Temp {
  bool zero = false;   // EOR Wt,Ws,Ws result (value 0, tainted by src)
  int src = -1;        // the data register the taint came from
  int value = 0;       // for MOV/ADD results
  bool has_value = false;
};

struct InitStmt {
  std::string text;
  Pos pos;
};

}  // namespace

LitmusFile parse_litmus(const std::string& text) {
  LitmusFile file;
  std::vector<std::pair<Pos, std::string>> comments;
  const std::vector<std::string> lines = strip_comments(text, &comments);

  // wmm-expect directives ride in comments.
  for (const auto& [cpos, body] : comments) {
    const std::size_t at = body.find("wmm-expect:");
    if (at == std::string::npos) continue;
    std::istringstream is(body.substr(at + 11));
    std::string tok;
    while (is >> tok) {
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos)
        fail(cpos, "malformed wmm-expect entry '" + tok + "'");
      const std::optional<Arch> arch = arch_from_short(tok.substr(0, eq));
      const std::string verdict = tok.substr(eq + 1);
      if (!arch)
        fail(cpos, "unknown architecture '" + tok.substr(0, eq) +
                       "' in wmm-expect");
      if (verdict != "allow" && verdict != "forbid")
        fail(cpos, "wmm-expect verdict must be allow or forbid, got '" +
                       verdict + "'");
      file.expected[*arch] = verdict == "allow";
    }
  }

  std::size_t li = 0;
  auto skip_blank = [&] {
    while (li < lines.size() && is_blank(lines[li])) ++li;
  };
  auto first_nonspace_col = [&](const std::string& line) {
    int c = 1;
    for (char ch : line) {
      if (!std::isspace(static_cast<unsigned char>(ch))) break;
      ++c;
    }
    return c;
  };

  // --- Header: "<arch> <name>".
  skip_blank();
  if (li >= lines.size()) fail({1, 1}, "empty litmus file");
  {
    const std::string& line = lines[li];
    const int col = first_nonspace_col(line);
    std::istringstream is(line);
    std::string archword;
    is >> archword;
    Pos p{static_cast<int>(li) + 1, col};
    if (archword == "X86") {
      file.dialect = LitmusDialect::X86;
    } else if (archword == "AArch64") {
      file.dialect = LitmusDialect::AArch64;
    } else {
      fail(p, "unknown architecture '" + archword +
                  "' (expected X86 or AArch64)");
    }
    std::string name = trim(line.substr(line.find(archword) + archword.size()));
    if (name.empty())
      fail({p.line, col + static_cast<int>(archword.size())},
           "missing test name after architecture");
    file.test.name = name;
    ++li;
  }

  // --- Init block: statements between '{' and '}'.
  skip_blank();
  if (li >= lines.size() ||
      trim(lines[li]).empty() || trim(lines[li])[0] != '{') {
    Pos p{static_cast<int>(li) + 1, 1};
    fail(p, "expected '{' to open the init block");
  }
  std::vector<InitStmt> init_stmts;
  Pos open_pos{static_cast<int>(li) + 1, first_nonspace_col(lines[li])};
  {
    bool closed = false;
    std::string cur;
    Pos cur_pos{0, 0};
    std::size_t ci = static_cast<std::size_t>(open_pos.col);  // after '{'
    for (; li < lines.size() && !closed; ++li, ci = 0) {
      const std::string& line = lines[li];
      for (; ci < line.size(); ++ci) {
        const char c = line[ci];
        Pos p{static_cast<int>(li) + 1, static_cast<int>(ci) + 1};
        if (c == '}') {
          if (!is_blank(cur)) init_stmts.push_back({trim(cur), cur_pos});
          if (!is_blank(line.substr(ci + 1)))
            fail({p.line, p.col + 1}, "unexpected text after '}'");
          closed = true;
          break;
        }
        if (c == ';') {
          if (!is_blank(cur)) init_stmts.push_back({trim(cur), cur_pos});
          cur.clear();
        } else {
          if (is_blank(cur) && !std::isspace(static_cast<unsigned char>(c)))
            cur_pos = p;
          cur += c;
        }
      }
    }
    if (!closed) fail(open_pos, "unterminated init block");
  }

  // Pass 1: variable declarations "name=0".
  VarTable vars;
  std::vector<std::pair<std::string, Pos>> decls;
  for (const InitStmt& st : init_stmts) {
    if (st.text.find(':') != std::string::npos) continue;
    const std::size_t eq = st.text.find('=');
    if (eq == std::string::npos)
      fail(st.pos, "expected '=' in init statement '" + st.text + "'");
    const std::string name = trim(st.text.substr(0, eq));
    const std::string value = trim(st.text.substr(eq + 1));
    if (name.empty()) fail(st.pos, "missing variable name in init statement");
    if (value != "0")
      fail(st.pos, "non-zero initial values are not supported (got '" +
                       name + "=" + value + "')");
    for (const auto& [n, p] : decls) {
      if (n == name) fail(st.pos, "variable '" + name + "' declared twice");
    }
    decls.emplace_back(name, st.pos);
  }
  if (decls.empty()) fail(open_pos, "init block declares no variables");
  bool all_scheme = true;
  for (const auto& [n, p] : decls) {
    if (!litmus_var_index(n)) all_scheme = false;
  }
  for (std::size_t i = 0; i < decls.size(); ++i) {
    const int idx = all_scheme ? *litmus_var_index(decls[i].first)
                               : static_cast<int>(i);
    vars.index[decls[i].first] = idx;
    vars.num_vars = std::max(vars.num_vars, idx + 1);
  }
  file.test.num_vars = vars.num_vars;

  // Pass 2: address-register bindings "p:Xn=name".
  struct Binding {
    int var;
    Pos pos;
  };
  std::map<int, std::map<int, Binding>> bindings;  // thread -> xreg -> var
  for (const InitStmt& st : init_stmts) {
    const std::size_t colon = st.text.find(':');
    if (colon == std::string::npos) continue;
    if (file.dialect == LitmusDialect::X86)
      fail(st.pos, "address-register bindings are not used in the X86 dialect");
    const std::size_t eq = st.text.find('=');
    if (eq == std::string::npos || eq < colon)
      fail(st.pos, "expected '=' in init statement '" + st.text + "'");
    const int proc = static_cast<int>(
        parse_long(trim(st.text.substr(0, colon)), st.pos, "proc id"));
    const std::string regname = trim(st.text.substr(colon + 1, eq - colon - 1));
    const int xreg = parse_prefixed_reg(regname, 'X', st.pos);
    const std::string varname = trim(st.text.substr(eq + 1));
    const std::optional<int> var = vars.find(varname);
    if (!var)
      fail(st.pos, "address register bound to undeclared variable '" +
                       varname + "'");
    auto& slot = bindings[proc];
    if (slot.count(xreg))
      fail(st.pos, "address register X" + std::to_string(xreg) +
                       " bound twice for proc " + std::to_string(proc));
    slot.emplace(xreg, Binding{*var, st.pos});
  }

  // --- Program rows.
  auto parse_row = [&](std::size_t line_idx) {
    const std::string& line = lines[line_idx];
    const std::string t = trim(line);
    Pos end{static_cast<int>(line_idx) + 1, static_cast<int>(line.size()) + 1};
    if (t.empty() || t.back() != ';')
      fail(end, "expected ';' at end of row");
    const std::size_t semi = line.rfind(';');
    std::vector<Cell> cells;
    std::string cur;
    std::size_t start = 0;
    auto push = [&](std::size_t upto) {
      std::size_t b = start;
      while (b < upto && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
      cells.push_back({trim(line.substr(start, upto - start)),
                       Pos{static_cast<int>(line_idx) + 1,
                           static_cast<int>(b) + 1}});
    };
    for (std::size_t i = 0; i < semi; ++i) {
      if (line[i] == '|') {
        push(i);
        start = i + 1;
      }
    }
    push(semi);
    return cells;
  };

  skip_blank();
  if (li >= lines.size())
    fail({static_cast<int>(li), 1}, "missing program after init block");
  const std::vector<Cell> header_cells = parse_row(li);
  for (std::size_t i = 0; i < header_cells.size(); ++i) {
    const std::string want = "P" + std::to_string(i);
    if (header_cells[i].text != want)
      fail(header_cells[i].pos, "expected '" + want + "' in the proc header, got '" +
                                    header_cells[i].text + "'");
  }
  const std::size_t nthreads = header_cells.size();
  ++li;

  std::vector<std::vector<Cell>> program(nthreads);
  bool saw_condition = false;
  Pos cond_pos{0, 0};
  std::string cond_first_line;
  for (; li < lines.size(); ++li) {
    if (is_blank(lines[li])) continue;
    const std::string t = trim(lines[li]);
    if (t.rfind("exists", 0) == 0 || t.rfind("~exists", 0) == 0) {
      saw_condition = true;
      cond_pos = Pos{static_cast<int>(li) + 1, first_nonspace_col(lines[li])};
      break;
    }
    const std::vector<Cell> cells = parse_row(li);
    if (cells.size() != nthreads)
      fail(cells.front().pos,
           "expected " + std::to_string(nthreads) + " columns, got " +
               std::to_string(cells.size()));
    for (std::size_t c = 0; c < nthreads; ++c) {
      if (!cells[c].text.empty()) program[c].push_back(cells[c]);
    }
  }
  if (!saw_condition)
    fail({static_cast<int>(lines.size()), 1}, "missing final-state condition");

  // --- Condition: collect chars between '(' and ')' (may span lines).
  file.negated = trim(lines[static_cast<std::size_t>(cond_pos.line) - 1])
                     .rfind("~exists", 0) == 0;
  std::vector<Ch> cond_chars;
  {
    const std::size_t kw_len = file.negated ? 7 : 6;
    std::size_t lidx = static_cast<std::size_t>(cond_pos.line) - 1;
    std::size_t cidx = static_cast<std::size_t>(cond_pos.col) - 1 + kw_len;
    // find '('
    bool found_open = false;
    Pos paren{0, 0};
    for (; cidx < lines[lidx].size(); ++cidx) {
      const char c = lines[lidx][cidx];
      if (c == '(') {
        found_open = true;
        paren = {static_cast<int>(lidx) + 1, static_cast<int>(cidx) + 1};
        break;
      }
      if (!std::isspace(static_cast<unsigned char>(c)))
        fail({static_cast<int>(lidx) + 1, static_cast<int>(cidx) + 1},
             "expected '(' after 'exists'");
    }
    if (!found_open) fail(cond_pos, "expected '(' after 'exists'");
    ++cidx;
    bool closed = false;
    for (; lidx < lines.size() && !closed; ++lidx, cidx = 0) {
      for (; cidx < lines[lidx].size(); ++cidx) {
        const char c = lines[lidx][cidx];
        Pos p{static_cast<int>(lidx) + 1, static_cast<int>(cidx) + 1};
        if (c == ')') {
          closed = true;
          if (!is_blank(lines[lidx].substr(cidx + 1)))
            fail({p.line, p.col + 1}, "unexpected text after condition");
          break;
        }
        cond_chars.push_back({c, p});
      }
    }
    if (!closed) fail(paren, "unterminated condition");
    for (; lidx < lines.size(); ++lidx) {
      if (!is_blank(lines[lidx]))
        fail({static_cast<int>(lidx) + 1, first_nonspace_col(lines[lidx])},
             "unexpected text after condition");
    }
  }
  for (std::size_t i = 0; i + 1 < cond_chars.size(); ++i) {
    if (cond_chars[i].c == '\\' && cond_chars[i + 1].c == '/')
      fail(cond_chars[i].pos, "disjunctions are not supported");
  }

  // Split atoms on "/\".
  std::vector<std::pair<std::string, Pos>> atoms;
  {
    std::string cur;
    Pos cur_pos{cond_pos.line, cond_pos.col};
    bool have_pos = false;
    auto flush = [&](Pos at) {
      if (is_blank(cur)) fail(at, "empty conjunct in condition");
      atoms.emplace_back(trim(cur), cur_pos);
      cur.clear();
      have_pos = false;
    };
    for (std::size_t i = 0; i < cond_chars.size(); ++i) {
      if (cond_chars[i].c == '/' && i + 1 < cond_chars.size() &&
          cond_chars[i + 1].c == '\\') {
        flush(cond_chars[i].pos);
        ++i;
        continue;
      }
      if (!have_pos &&
          !std::isspace(static_cast<unsigned char>(cond_chars[i].c))) {
        cur_pos = cond_chars[i].pos;
        have_pos = true;
      }
      cur += cond_chars[i].c;
    }
    if (!is_blank(cur) || atoms.empty()) {
      if (is_blank(cur))
        fail(cond_pos, "empty condition");
      atoms.emplace_back(trim(cur), cur_pos);
    }
  }

  // --- Decode the program columns into LitmusInstrs.
  std::map<int, int> loaded_global;            // data reg -> owning thread
  std::vector<std::vector<int>> loaded_per(nthreads);
  file.test.threads.resize(nthreads);
  int max_data_reg = -1;

  for (std::size_t t = 0; t < nthreads; ++t) {
    std::map<int, Temp> temps;
    int pending_ctrl = -1;
    Pos pending_pos{0, 0};
    std::string expect_label;
    auto& out = file.test.threads[t].instrs;
    auto& loaded_here = loaded_per[t];
    auto thread_binding = [&](int xreg, Pos p) {
      auto bt = bindings.find(static_cast<int>(t));
      if (bt != bindings.end()) {
        auto bx = bt->second.find(xreg);
        if (bx != bt->second.end()) return bx->second.var;
      }
      fail(p, "undeclared address register X" + std::to_string(xreg) +
                  " (no init binding for proc " + std::to_string(t) + ")");
    };
    auto require_loaded_here = [&](int reg, Pos p) {
      if (std::find(loaded_here.begin(), loaded_here.end(), reg) ==
          loaded_here.end())
        fail(p, "dangling dependency: register W" + std::to_string(reg) +
                    " has not been loaded on this thread");
    };
    auto take_ctrl = [&]() {
      const int c = pending_ctrl;
      pending_ctrl = -1;
      return c;
    };
    for (const Cell& cell : program[t]) {
      const std::string& s = cell.text;
      if (!expect_label.empty()) {
        if (s != expect_label + ":")
          fail(cell.pos, "expected label '" + expect_label +
                             ":' after CBNZ, got '" + s + "'");
        expect_label.clear();
        continue;
      }
      const std::size_t sp = s.find(' ');
      const std::string mn = s.substr(0, sp);
      const std::string rest = sp == std::string::npos ? "" : trim(s.substr(sp));
      const std::vector<std::string> ops = split_ops(rest);

      if (file.dialect == LitmusDialect::X86) {
        if (mn == "MFENCE" && ops.empty()) {
          out.push_back(LitmusInstr::barrier(FenceKind::Mfence));
        } else if (mn == "NOP" && ops.empty()) {
          out.push_back(LitmusInstr::barrier(FenceKind::Nop));
        } else if (mn == "MOV" && ops.size() == 2 && !ops[0].empty() &&
                   ops[0][0] == '[') {
          // MOV [x],$v  — store.
          if (ops[0].size() < 3 || ops[0].back() != ']')
            fail(cell.pos, "malformed memory operand '" + ops[0] + "'");
          const std::string varname = trim(ops[0].substr(1, ops[0].size() - 2));
          const std::optional<int> var = vars.find(varname);
          if (!var)
            fail(cell.pos, "undeclared variable '" + varname + "'");
          if (ops[1].empty() || ops[1][0] != '$')
            fail(cell.pos, "expected a '$value' store operand, got '" +
                               ops[1] + "'");
          const int value = static_cast<int>(
              parse_long(ops[1].substr(1), cell.pos, "store value"));
          out.push_back(LitmusInstr::write(*var, value));
        } else if (mn == "MOV" && ops.size() == 2 && !ops[1].empty() &&
                   ops[1][0] == '[') {
          // MOV EAX,[x]  — load.
          const std::optional<int> reg = x86_reg_index(ops[0]);
          if (!reg)
            fail(cell.pos, "unknown register '" + ops[0] + "'");
          if (ops[1].size() < 3 || ops[1].back() != ']')
            fail(cell.pos, "malformed memory operand '" + ops[1] + "'");
          const std::string varname = trim(ops[1].substr(1, ops[1].size() - 2));
          const std::optional<int> var = vars.find(varname);
          if (!var)
            fail(cell.pos, "undeclared variable '" + varname + "'");
          if (loaded_global.count(*reg))
            fail(cell.pos, "register " + ops[0] + " already loaded");
          loaded_global[*reg] = static_cast<int>(t);
          loaded_here.push_back(*reg);
          max_data_reg = std::max(max_data_reg, *reg);
          out.push_back(LitmusInstr::read(*reg, *var));
        } else {
          fail(cell.pos, "unknown instruction '" + s + "'");
        }
        continue;
      }

      // AArch64 dialect.
      if (mn == "LC" || (mn.rfind("LC", 0) == 0 && mn.back() == ':')) {
        fail(cell.pos, "label '" + s + "' does not follow a CBNZ");
      } else if (mn == "CBNZ") {
        if (ops.size() != 2)
          fail(cell.pos, "CBNZ expects a register and a label");
        const int reg = parse_prefixed_reg(ops[0], 'W', cell.pos);
        require_loaded_here(reg, cell.pos);
        if (pending_ctrl >= 0)
          fail(cell.pos, "nested control dependencies are not supported");
        pending_ctrl = reg;
        pending_pos = cell.pos;
        expect_label = ops[1];
      } else if (mn == "MOV") {
        if (ops.size() != 2)
          fail(cell.pos, "MOV expects a register and an immediate");
        const int reg = parse_prefixed_reg(ops[0], 'W', cell.pos);
        Temp tmp;
        tmp.has_value = true;
        tmp.value = parse_imm(ops[1], cell.pos);
        temps[reg] = tmp;
      } else if (mn == "EOR") {
        if (ops.size() != 3)
          fail(cell.pos, "EOR expects three registers");
        const int dst = parse_prefixed_reg(ops[0], 'W', cell.pos);
        const int a = parse_prefixed_reg(ops[1], 'W', cell.pos);
        const int b = parse_prefixed_reg(ops[2], 'W', cell.pos);
        if (a != b)
          fail(cell.pos, "EOR operands must match (false-dependency idiom)");
        require_loaded_here(a, cell.pos);
        Temp tmp;
        tmp.zero = true;
        tmp.src = a;
        temps[dst] = tmp;
      } else if (mn == "ADD") {
        if (ops.size() != 3)
          fail(cell.pos, "ADD expects two registers and an immediate");
        const int dst = parse_prefixed_reg(ops[0], 'W', cell.pos);
        const int src = parse_prefixed_reg(ops[1], 'W', cell.pos);
        if (dst != src)
          fail(cell.pos, "ADD must target its source register");
        auto it = temps.find(dst);
        if (it == temps.end() || !it->second.zero)
          fail(cell.pos, "ADD without a preceding EOR false dependency");
        it->second.has_value = true;
        it->second.value = parse_imm(ops[2], cell.pos);
      } else if (mn == "LDR" || mn == "LDAR") {
        if (ops.size() != 2)
          fail(cell.pos, "load expects a register and a memory operand");
        const int reg = parse_prefixed_reg(ops[0], 'W', cell.pos);
        const MemOperand mem = parse_mem(ops[1], cell.pos);
        const int var = thread_binding(mem.xreg, cell.pos);
        if (loaded_global.count(reg))
          fail(cell.pos, "register W" + std::to_string(reg) +
                             " already loaded");
        LitmusInstr in = LitmusInstr::read(reg, var);
        in.acquire = mn == "LDAR";
        if (mem.index_wreg >= 0) {
          auto it = temps.find(mem.index_wreg);
          if (it == temps.end() || !it->second.zero)
            fail(cell.pos, "index register W" + std::to_string(mem.index_wreg) +
                               " is not an EOR false dependency");
          in.addr_dep = it->second.src;
        }
        in.ctrl_dep = take_ctrl();
        loaded_global[reg] = static_cast<int>(t);
        loaded_here.push_back(reg);
        max_data_reg = std::max(max_data_reg, reg);
        out.push_back(in);
      } else if (mn == "STR" || mn == "STLR") {
        if (ops.size() != 2)
          fail(cell.pos, "store expects a register and a memory operand");
        const int reg = parse_prefixed_reg(ops[0], 'W', cell.pos);
        const MemOperand mem = parse_mem(ops[1], cell.pos);
        const int var = thread_binding(mem.xreg, cell.pos);
        auto it = temps.find(reg);
        if (it == temps.end() || !it->second.has_value) {
          if (std::find(loaded_here.begin(), loaded_here.end(), reg) !=
              loaded_here.end())
            fail(cell.pos, "storing a loaded register is not supported "
                           "(use the EOR+ADD data-dependency idiom)");
          fail(cell.pos, "store of undefined register W" +
                             std::to_string(reg));
        }
        LitmusInstr in = LitmusInstr::write(var, it->second.value);
        in.release = mn == "STLR";
        if (it->second.zero) in.data_dep = it->second.src;
        if (mem.index_wreg >= 0) {
          auto ix = temps.find(mem.index_wreg);
          if (ix == temps.end() || !ix->second.zero)
            fail(cell.pos, "index register W" + std::to_string(mem.index_wreg) +
                               " is not an EOR false dependency");
          in.addr_dep = ix->second.src;
        }
        in.ctrl_dep = take_ctrl();
        out.push_back(in);
      } else if (mn == "ISB" && ops.empty()) {
        if (pending_ctrl >= 0) {
          const int reg = take_ctrl();
          LitmusInstr in = LitmusInstr::barrier(FenceKind::CtrlIsb);
          // The printer branches on the most recent load; only remember the
          // register when it deviates from that default.
          if (loaded_here.empty() || loaded_here.back() != reg)
            in.ctrl_dep = reg;
          out.push_back(in);
        } else {
          out.push_back(LitmusInstr::barrier(FenceKind::Isb));
        }
      } else if (mn == "DMB") {
        if (rest == "ISH") out.push_back(LitmusInstr::barrier(FenceKind::DmbIsh));
        else if (rest == "ISHLD")
          out.push_back(LitmusInstr::barrier(FenceKind::DmbIshLd));
        else if (rest == "ISHST")
          out.push_back(LitmusInstr::barrier(FenceKind::DmbIshSt));
        else
          fail(cell.pos, "unknown barrier 'DMB " + rest + "'");
      } else if (mn == "DSB") {
        if (rest == "SY") out.push_back(LitmusInstr::barrier(FenceKind::DsbSy));
        else
          fail(cell.pos, "unknown barrier 'DSB " + rest + "'");
      } else if (mn == "NOP" && ops.empty()) {
        out.push_back(LitmusInstr::barrier(FenceKind::Nop));
      } else if (mn == "SYNC" && ops.empty()) {
        out.push_back(LitmusInstr::barrier(FenceKind::HwSync));
      } else if (mn == "LWSYNC" && ops.empty()) {
        out.push_back(LitmusInstr::barrier(FenceKind::LwSync));
      } else if (mn == "ISYNC" && ops.empty()) {
        out.push_back(LitmusInstr::barrier(FenceKind::ISync));
      } else if (mn == "MFENCE" && ops.empty()) {
        out.push_back(LitmusInstr::barrier(FenceKind::Mfence));
      } else if (mn == "CTRLISB" && ops.empty()) {
        out.push_back(LitmusInstr::barrier(FenceKind::CtrlIsb));
      } else {
        fail(cell.pos, "unknown instruction '" + s + "'");
      }
    }
    if (!expect_label.empty())
      fail(pending_pos, "CBNZ label '" + expect_label + "' is never defined");
    if (pending_ctrl >= 0)
      fail(pending_pos, "dangling control dependency: branch on W" +
                            std::to_string(pending_ctrl) +
                            " guards no access");
  }
  file.test.num_regs = max_data_reg + 1;

  // Bindings must name procs that exist.
  for (const auto& [proc, regs] : bindings) {
    if (proc < 0 || proc >= static_cast<int>(nthreads))
      fail(regs.begin()->second.pos,
           "init binding names proc " + std::to_string(proc) +
               ", but the program has " + std::to_string(nthreads) +
               " procs");
  }

  // --- Condition atoms.
  for (const auto& [atext, apos] : atoms) {
    const std::size_t eq = atext.find('=');
    if (eq == std::string::npos)
      fail(apos, "expected '=' in condition atom '" + atext + "'");
    const std::string lhs = trim(atext.substr(0, eq));
    const std::string rhs = trim(atext.substr(eq + 1));
    LitmusCondAtom atom;
    atom.value = static_cast<int>(parse_long(rhs, apos, "condition value"));
    const std::size_t colon = lhs.find(':');
    if (colon != std::string::npos) {
      atom.is_reg = true;
      atom.thread = static_cast<int>(
          parse_long(trim(lhs.substr(0, colon)), apos, "proc id"));
      const std::string regname = trim(lhs.substr(colon + 1));
      if (file.dialect == LitmusDialect::X86) {
        const std::optional<int> reg = x86_reg_index(regname);
        if (!reg) fail(apos, "unknown register '" + regname + "'");
        atom.index = *reg;
      } else {
        atom.index = parse_prefixed_reg(regname, 'W', apos);
      }
      auto it = loaded_global.find(atom.index);
      if (it == loaded_global.end())
        fail(apos, "condition references register " + regname +
                       ", which is never loaded");
      if (it->second != atom.thread)
        fail(apos, "register " + regname + " is loaded by P" +
                       std::to_string(it->second) + ", not P" +
                       std::to_string(atom.thread));
    } else {
      atom.is_reg = false;
      atom.thread = -1;
      const std::optional<int> var = vars.find(lhs);
      if (!var)
        fail(apos, "condition references undeclared variable '" + lhs + "'");
      atom.index = *var;
    }
    file.condition.push_back(atom);
  }

  return file;
}

}  // namespace wmm::sim
