// The simulated weak-memory multicore: per-core timing state (store buffer,
// invalidation queue, outstanding loads, branch predictor) over a shared
// coherence directory and bus, with per-architecture fence cost semantics.
//
// This is a timing model, not a functional simulator: workloads drive each
// Cpu with loads/stores/fences/compute and the machine answers "how long did
// that take", with fence costs depending on machine state.  Functional
// weak-memory *semantics* (which outcomes are possible) live in the separate
// litmus executor (sim/memory_model.h).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/arch.h"
#include "sim/branch_predictor.h"
#include "sim/coherence.h"
#include "sim/fence.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/store_buffer.h"

namespace wmm::sim {

class Machine;

// One simulated hardware thread's timing state.
class Cpu {
 public:
  Cpu(Machine* machine, int index, const ArchParams& params);

  int index() const { return index_; }
  double now() const { return now_; }
  void advance(double ns) { now_ += ns; }

  // --- Execution primitives -------------------------------------------------

  // Plain computation taking `ns` of pipeline time.
  void compute(double ns) { now_ += ns; }

  void nops(std::uint32_t n);

  // Load/store of a named shared line (goes through the coherence directory).
  void load_shared(LineId line);
  void store_shared(LineId line);

  // ARMv8 load-acquire / store-release on a shared line.
  void load_acquire(LineId line);
  void store_release(LineId line);

  // Statistical private-memory traffic: `loads` loads with the given L1 miss
  // rate plus `stores` stores into the store buffer.
  void private_access(unsigned loads, unsigned stores, double miss_rate);

  // A conditional branch at `site` that goes direction `taken`.
  void branch(std::uint64_t site, bool taken);

  // Bulk application branch activity: costs nothing extra here (it is part
  // of the workload's compute time) but ages the branch predictor, evicting
  // the history of injected ctrl-dependency sites.
  void pollute_predictor(unsigned branches);

  // A memory-ordering instruction; `site` identifies the code path (used for
  // ctrl-dependency branch prediction).  Each call counts as one fence event
  // and one trace slice, even when the lowering internally subsumes a weaker
  // barrier.
  void fence(FenceKind kind, std::uint64_t site = 0);

  // Execute a lowered barrier sequence.
  void exec_seq(const FenceSeq& seq, std::uint64_t site = 0);

  // The injected spin-loop cost function (Figures 2/3): `iterations` loop
  // iterations, optionally spilling a register to the stack.
  void cost_loop(std::uint32_t iterations, bool stack_spill);

  // --- Introspection (tests, fences) ----------------------------------------

  double store_buffer_wait() const { return sb_.drain_wait(now_); }
  double store_buffer_occupancy() const { return sb_.occupancy(now_); }
  double pending_invalidations() const;
  double outstanding_load_wait() const;

  // Invalidation delivered by another core's store.
  void receive_invalidation(double at_time);

  Rng& rng() { return rng_; }
  void seed_rng(std::uint64_t seed) { rng_ = Rng(seed); }

  void reset();

 private:
  friend class Machine;

  void fence_impl(FenceKind kind, std::uint64_t site);

  double process_invalidations();  // returns processing cost, clears queue

  Machine* machine_;
  int index_;
  const ArchParams* params_;
  // Counter registry / slot ids resolved once at construction so the hooks
  // on hot paths (fence, branch, invalidations) are direct inlined ops.
  obs::CounterRegistry* reg_;
  const SimCounterIds* ids_;

  double now_ = 0.0;
  StoreBuffer sb_;
  BranchPredictor predictor_;
  Rng rng_;

  // Invalidation queue as a decaying counter: entries are acknowledged in the
  // background at one per `inv_background_ns` when the core is not fencing.
  double invq_pending_ = 0.0;
  double invq_updated_ = 0.0;
  static constexpr double kInvBackgroundNs = 18.0;

  double last_load_complete_ = 0.0;
};

// A simulated thread: the machine repeatedly steps whichever active thread
// has the smallest local clock, so cross-thread interactions happen in global
// time order.  `step` performs one quantum of work on its Cpu and returns
// false when the thread has finished.
class SimThread {
 public:
  virtual ~SimThread() = default;
  virtual bool step(Cpu& cpu) = 0;
};

class Machine {
 public:
  explicit Machine(const ArchParams& params);

  const ArchParams& params() const { return params_; }
  Arch arch() const { return params_.arch; }

  // Process id in exported Chrome traces (machines number monotonically per
  // process; each machine is one trace "process", each cpu one "thread").
  unsigned id() const { return id_; }

  unsigned num_cpus() const { return static_cast<unsigned>(cpus_.size()); }
  Cpu& cpu(unsigned i) { return *cpus_[i]; }

  Bus& bus() { return bus_; }
  CoherenceDirectory& directory() { return directory_; }

  // Deliver an invalidation to every core in `targets` at time `at`.
  void send_invalidations(const std::vector<int>& targets, double at);

  // Stop-the-world pause (e.g. garbage collection): all cores advance to the
  // max clock plus `ns`.
  void stall_all(double ns);

  // Run `threads` (thread i on cpu `cpu_of[i]`) until all have finished.
  // Returns the final simulated time (max over cpus that ran).
  double run(const std::vector<SimThread*>& threads,
             const std::vector<unsigned>& cpu_of);

  // Convenience: one thread per cpu starting at cpu 0.
  double run(const std::vector<SimThread*>& threads);

  void reset();

 private:
  ArchParams params_;
  unsigned id_ = 0;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  Bus bus_;
  CoherenceDirectory directory_;
  std::vector<int> invalidation_scratch_;

  friend class Cpu;
};

}  // namespace wmm::sim
