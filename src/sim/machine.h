// The simulated weak-memory multicore: per-core timing state (store buffer,
// invalidation queue, outstanding loads, branch predictor) over a shared
// coherence directory and bus, with per-architecture fence cost semantics.
//
// This is a timing model, not a functional simulator: workloads drive each
// Cpu with loads/stores/fences/compute and the machine answers "how long did
// that take", with fence costs depending on machine state.  Functional
// weak-memory *semantics* (which outcomes are possible) live in the separate
// litmus executor (sim/memory_model.h).
//
// Layout: cores live in one contiguous std::vector<Cpu>, and the
// frequently-swept per-core doubles (store-buffer drain state, invalidation
// queue) are struct-of-arrays columns owned by the Machine (CoreColumns
// below) with inline storage for typical core counts.  Invalidations travel
// as core bitmasks straight from the coherence directory and are delivered in
// one batched sweep — no per-message objects (docs/simulator.md, "Timing
// machine").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/arch.h"
#include "sim/branch_predictor.h"
#include "sim/coherence.h"
#include "sim/fence.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/store_buffer.h"

namespace wmm::sim {

class Machine;

// Struct-of-arrays per-core timing state: four parallel double columns laid
// out column-major in one block, inline up to kInlineCores.  The Machine owns
// the block; each Cpu (and its StoreBuffer view) holds pointers to its slots,
// and batched sweeps (send_invalidations) walk a whole column contiguously.
class CoreColumns {
 public:
  void init(unsigned cores) {
    cores_ = cores;
    if (cores > kInlineCores) {
      heap_ = std::make_unique<double[]>(4 * static_cast<std::size_t>(cores));
      base_ = heap_.get();
    } else {
      base_ = inline_;
    }
    for (std::size_t i = 0; i < 4 * static_cast<std::size_t>(cores); ++i) {
      base_[i] = 0.0;
    }
  }

  double* sb_drain_complete() { return base_; }
  double* sb_local_hwm() { return base_ + cores_; }
  double* invq_pending() { return base_ + 2 * static_cast<std::size_t>(cores_); }
  double* invq_updated() { return base_ + 3 * static_cast<std::size_t>(cores_); }

  static constexpr unsigned kInlineCores = 16;

 private:
  double inline_[4 * kInlineCores];
  std::unique_ptr<double[]> heap_;
  double* base_ = nullptr;
  unsigned cores_ = 0;
};

// One simulated hardware thread's timing state.
class Cpu {
 public:
  Cpu(Machine* machine, int index, const ArchParams& params);

  int index() const { return index_; }
  double now() const { return now_; }
  void advance(double ns) { now_ += ns; }

  // --- Execution primitives -------------------------------------------------

  // Plain computation taking `ns` of pipeline time.
  void compute(double ns) { now_ += ns; }

  void nops(std::uint32_t n);

  // Load/store of a named shared line (goes through the coherence directory).
  void load_shared(LineId line);
  void store_shared(LineId line);

  // ARMv8 load-acquire / store-release on a shared line.
  void load_acquire(LineId line);
  void store_release(LineId line);

  // Statistical private-memory traffic: `loads` loads with the given L1 miss
  // rate plus `stores` stores into the store buffer.
  void private_access(unsigned loads, unsigned stores, double miss_rate);

  // A conditional branch at `site` that goes direction `taken`.
  void branch(std::uint64_t site, bool taken);

  // Bulk application branch activity: costs nothing extra here (it is part
  // of the workload's compute time) but ages the branch predictor, evicting
  // the history of injected ctrl-dependency sites.
  void pollute_predictor(unsigned branches);

  // A memory-ordering instruction; `site` identifies the code path (used for
  // ctrl-dependency branch prediction).  Each call counts as one fence event
  // and one trace slice, even when the lowering internally subsumes a weaker
  // barrier.
  void fence(FenceKind kind, std::uint64_t site = 0);

  // Execute a lowered barrier sequence.
  void exec_seq(const FenceSeq& seq, std::uint64_t site = 0);

  // The injected spin-loop cost function (Figures 2/3): `iterations` loop
  // iterations, optionally spilling a register to the stack.
  void cost_loop(std::uint32_t iterations, bool stack_spill);

  // --- Introspection (tests, fences) ----------------------------------------

  double store_buffer_wait() const { return sb_.drain_wait(now_); }
  double store_buffer_occupancy() const { return sb_.occupancy(now_); }
  double pending_invalidations() const;
  double outstanding_load_wait() const;

  // Invalidation delivered by another core's store.
  void receive_invalidation(double at_time);

  Rng& rng() { return rng_; }
  void seed_rng(std::uint64_t seed) { rng_ = Rng(seed); }

  void reset();

 private:
  friend class Machine;

  void fence_impl(FenceKind kind, std::uint64_t site);

  double process_invalidations();  // returns processing cost, clears queue

  Machine* machine_;
  int index_;
  const ArchParams* params_;
  // Counter registry / slot ids resolved once at construction so the hooks
  // on hot paths (fence, branch, invalidations) are direct inlined ops.
  obs::CounterRegistry* reg_;
  const SimCounterIds* ids_;

  double now_ = 0.0;
  StoreBuffer sb_;  // view over this core's CoreColumns slots
  BranchPredictor predictor_;
  Rng rng_;

  // Invalidation queue as a decaying counter: entries are acknowledged in the
  // background at one per `inv_background_ns` when the core is not fencing.
  // The pending/updated doubles live in the Machine's CoreColumns; these are
  // this core's slots.
  double* invq_pending_;
  double* invq_updated_;
  static constexpr double kInvBackgroundNs = 18.0;

  double last_load_complete_ = 0.0;
};

// A simulated thread: the machine repeatedly steps whichever active thread
// has the smallest local clock, so cross-thread interactions happen in global
// time order.  `step` performs one quantum of work on its Cpu and returns
// false when the thread has finished.
class SimThread {
 public:
  virtual ~SimThread() = default;
  virtual bool step(Cpu& cpu) = 0;
};

class Machine {
 public:
  explicit Machine(const ArchParams& params);

  // Cpus cache pointers into columns_ and back-pointers to the machine, so a
  // Machine is pinned at its construction address.
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const ArchParams& params() const { return params_; }
  Arch arch() const { return params_.arch; }

  // Process id in exported Chrome traces (machines number monotonically per
  // process; each machine is one trace "process", each cpu one "thread").
  unsigned id() const { return id_; }

  unsigned num_cpus() const { return static_cast<unsigned>(cpus_.size()); }
  Cpu& cpu(unsigned i) { return cpus_[i]; }

  Bus& bus() { return bus_; }
  CoherenceDirectory& directory() { return directory_; }

  // Deliver an invalidation to every core whose bit is set in `targets`
  // (as produced by CoherenceDirectory::write) at time `at`, in one sweep
  // over the invalidation-queue columns.
  void send_invalidations(std::uint32_t targets, double at);

  // Stop-the-world pause (e.g. garbage collection): all cores advance to the
  // max clock plus `ns`.
  void stall_all(double ns);

  // Run `threads` (thread i on cpu `cpu_of[i]`) until all have finished.
  // Returns the final simulated time (max over cpus that ran).
  double run(const std::vector<SimThread*>& threads,
             const std::vector<unsigned>& cpu_of);

  // Convenience: one thread per cpu starting at cpu 0.
  double run(const std::vector<SimThread*>& threads);

  void reset();

 private:
  ArchParams params_;
  unsigned id_ = 0;
  CoreColumns columns_;  // initialised before cpus_ are constructed
  std::vector<Cpu> cpus_;
  Bus bus_;
  CoherenceDirectory directory_;

  friend class Cpu;
};

}  // namespace wmm::sim
