#include "sim/axiomatic.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/profile.h"

namespace wmm::sim {

namespace {

// --- Fence ordering classes, re-derived independently of fence.cpp ---------
//
// Which program-order access-class pairs each fence instruction preserves.
// R = read before the fence, W = write before; second letter is the access
// after the fence.  Sources: ARMv8 ARM B2.3 (DMB/DSB/ISB), Power ISA 2.07
// Book II (sync/lwsync/isync), Intel SDM vol 3 8.2 (MFENCE).
struct AxOrder {
  bool rr = false, rw = false, wr = false, ww = false;
};

AxOrder ax_fence_class(FenceKind kind) {
  switch (kind) {
    // Full barriers: everything before ordered with everything after.
    case FenceKind::DmbIsh:
    case FenceKind::DsbSy:
    case FenceKind::HwSync:
    case FenceKind::Mfence:
      return {true, true, true, true};
    // lwsync: all pairs except store→load.
    case FenceKind::LwSync:
      return {true, true, false, true};
    // dmb ishld: loads before ordered with loads and stores after.
    case FenceKind::DmbIshLd:
      return {true, true, false, false};
    // Control dependency completed by isb/isync: prior reads ordered with
    // every later access (the read-ordering recipe); plain isb or a bare
    // control "fence" instruction orders nothing by itself.
    case FenceKind::CtrlIsb:
    case FenceKind::ISync:
      return {true, true, false, false};
    // dmb ishst: stores before ordered with stores after.
    case FenceKind::DmbIshSt:
      return {false, false, false, true};
    case FenceKind::Isb:
    case FenceKind::CtrlDep:
    case FenceKind::None:
    case FenceKind::Nop:
    case FenceKind::CompilerOnly:
      return {};
  }
  return {};
}

bool ax_is_access(const LitmusInstr& in) { return in.type != AccessType::Fence; }
bool ax_is_read(const LitmusInstr& in) { return in.type == AccessType::Read; }
bool ax_is_write(const LitmusInstr& in) { return in.type == AccessType::Write; }

// --- Candidate-execution machinery -----------------------------------------

constexpr std::size_t kMaxEvents = 30;  // adjacency rows fit in a uint32_t

struct AxEvent {
  int tid = -1;
  int idx = -1;  // instruction index within the thread
  bool write = false;
  int var = -1;
  int value = 0;
  int reg = -1;
};

struct CandidateSpace {
  const LitmusTest* test = nullptr;
  std::vector<AxEvent> events;
  // events index by (tid, instr idx); -1 for fences.
  std::vector<std::vector<int>> event_of;
  std::vector<int> reads;   // event ids
  std::vector<int> writes;  // event ids
  std::vector<std::vector<int>> writes_by_var;
  // rf candidates per read (position in `reads`): write event ids, -1 = init.
  std::vector<std::vector<int>> rf_candidates;

  // Static relations as adjacency-row bitsets (bit j of row i set <=> edge
  // i -> j), precomputed once per program so per-candidate graph resets are a
  // row copy instead of replaying an edge list.
  std::vector<std::uint32_t> ppo_rows;    // arch-preserved order
  std::vector<std::uint32_t> poloc_rows;  // same-location program order
};

// Directed graph over candidate events with O(n^2) Kahn acyclicity check.
class EdgeGraph {
 public:
  explicit EdgeGraph(std::size_t n) : n_(n), succ_(n, 0u) {}

  void add(int from, int to) {
    if (from == to) {
      self_loop_ = true;
      return;
    }
    succ_[static_cast<std::size_t>(from)] |= 1u << to;
  }

  // Reinitialises the graph from a precomputed adjacency-row set (static
  // relations carry no self-edges, so the poison flag clears too).
  void reset(const std::vector<std::uint32_t>& rows) {
    std::copy(rows.begin(), rows.end(), succ_.begin());
    self_loop_ = false;
  }

  bool acyclic() const {
    if (self_loop_) return false;
    std::uint32_t removed = 0;
    const std::uint32_t all = n_ == 32 ? 0xffffffffu : ((1u << n_) - 1u);
    for (std::size_t round = 0; round < n_; ++round) {
      bool progress = false;
      for (std::size_t v = 0; v < n_; ++v) {
        if (removed & (1u << v)) continue;
        // v is a sink (no live successors) -> remove it.
        if ((succ_[v] & ~removed) == 0) {
          removed |= 1u << v;
          progress = true;
        }
      }
      if (removed == all) return true;
      if (!progress) return false;
    }
    return removed == all;
  }

 private:
  std::size_t n_;
  std::vector<std::uint32_t> succ_;
  bool self_loop_ = false;
};

// Preserved program order between instructions i < j of `thread` (both
// accesses), re-derived from the architecture definitions.
bool ppo_pair(const LitmusThread& thread, std::size_t i, std::size_t j,
              Arch arch, const AxiomaticOptions& opt) {
  const LitmusInstr& a = thread.instrs[i];
  const LitmusInstr& b = thread.instrs[j];

  // Sequential consistency preserves all of program order.
  if (arch == Arch::SC) return true;

  // Per-location coherence: accesses to the same location commit in program
  // order on every simulated architecture (no store forwarding past a same-
  // location access in this model).
  if (!opt.drop_same_location_order && a.var >= 0 && a.var == b.var) {
    return true;
  }

  // Dependencies carried through registers written by earlier reads.
  if (ax_is_read(a) && a.reg >= 0) {
    if (!opt.drop_dependency_order &&
        (b.addr_dep == a.reg || b.data_dep == a.reg)) {
      return true;
    }
    // A bare control dependency orders the read only with dependent writes;
    // dependent reads may still be speculated past the branch.
    if (b.ctrl_dep == a.reg && ax_is_write(b)) return true;
  }

  // Acquire/release annotations (RCsc ldar/stlr semantics).
  if (!opt.drop_acquire_release) {
    if (a.acquire && ax_is_read(a)) return true;
    if (b.release && ax_is_write(b)) return true;
    if (a.release && b.acquire) return true;
  }

  // TSO preserves everything except store -> later load.
  if (arch == Arch::X86_TSO) {
    if (!(ax_is_write(a) && ax_is_read(b))) return true;
  }

  // Fence instructions strictly between the two accesses.
  for (std::size_t f = i + 1; f < j; ++f) {
    const LitmusInstr& fence = thread.instrs[f];
    if (ax_is_access(fence)) continue;
    AxOrder cls = ax_fence_class(fence.fence);
    if (opt.drop_tso_store_load_fence && arch == Arch::X86_TSO) {
      cls.wr = false;
    }
    const bool covered = ax_is_read(a) ? (ax_is_read(b) ? cls.rr : cls.rw)
                                       : (ax_is_read(b) ? cls.wr : cls.ww);
    if (covered) return true;
  }
  return false;
}

// Recompute the preserved-program-order rows of thread `t`.  This is the
// only part of the candidate space that depends on fence kinds, so the
// incremental evaluator calls it per dirty thread instead of rebuilding.
void compute_ppo_rows(CandidateSpace& s, std::size_t t, Arch arch,
                      const AxiomaticOptions& opt) {
  const LitmusThread& thread = s.test->threads[t];
  for (std::size_t i = 0; i < thread.instrs.size(); ++i) {
    if (s.event_of[t][i] < 0) continue;
    const std::size_t ei = static_cast<std::size_t>(s.event_of[t][i]);
    s.ppo_rows[ei] = 0u;
    for (std::size_t j = i + 1; j < thread.instrs.size(); ++j) {
      if (s.event_of[t][j] < 0) continue;
      const int ej = s.event_of[t][j];
      if (ppo_pair(thread, i, j, arch, opt)) s.ppo_rows[ei] |= 1u << ej;
    }
  }
}

CandidateSpace build_space(const LitmusTest& test, Arch arch,
                           const AxiomaticOptions& opt) {
  CandidateSpace s;
  s.test = &test;
  s.event_of.resize(test.threads.size());
  for (std::size_t t = 0; t < test.threads.size(); ++t) {
    s.event_of[t].assign(test.threads[t].instrs.size(), -1);
    for (std::size_t i = 0; i < test.threads[t].instrs.size(); ++i) {
      const LitmusInstr& in = test.threads[t].instrs[i];
      if (!ax_is_access(in)) continue;
      AxEvent e;
      e.tid = static_cast<int>(t);
      e.idx = static_cast<int>(i);
      e.write = ax_is_write(in);
      e.var = in.var;
      e.value = in.value;
      e.reg = in.reg;
      s.event_of[t][i] = static_cast<int>(s.events.size());
      s.events.push_back(e);
    }
  }
  if (s.events.size() > kMaxEvents) {
    throw std::invalid_argument("litmus test too large for axiomatic checker");
  }

  s.writes_by_var.assign(static_cast<std::size_t>(test.num_vars), {});
  for (std::size_t e = 0; e < s.events.size(); ++e) {
    if (s.events[e].write) {
      s.writes.push_back(static_cast<int>(e));
      s.writes_by_var[static_cast<std::size_t>(s.events[e].var)].push_back(
          static_cast<int>(e));
    } else {
      s.reads.push_back(static_cast<int>(e));
    }
  }
  for (int r : s.reads) {
    std::vector<int> cand = {-1};  // the initial value (zero)
    for (int w : s.writes_by_var[static_cast<std::size_t>(s.events[static_cast<std::size_t>(r)].var)]) {
      cand.push_back(w);
    }
    s.rf_candidates.push_back(std::move(cand));
  }

  // Static program-order relations, as row bitsets.
  s.ppo_rows.assign(s.events.size(), 0u);
  s.poloc_rows.assign(s.events.size(), 0u);
  for (std::size_t t = 0; t < test.threads.size(); ++t) {
    const LitmusThread& thread = test.threads[t];
    compute_ppo_rows(s, t, arch, opt);
    for (std::size_t i = 0; i < thread.instrs.size(); ++i) {
      if (s.event_of[t][i] < 0) continue;
      for (std::size_t j = i + 1; j < thread.instrs.size(); ++j) {
        if (s.event_of[t][j] < 0) continue;
        const std::size_t ei = static_cast<std::size_t>(s.event_of[t][i]);
        const int ej = s.event_of[t][j];
        const LitmusInstr& a = thread.instrs[i];
        const LitmusInstr& b = thread.instrs[j];
        if (!opt.drop_same_location_order && a.var >= 0 && a.var == b.var) {
          s.poloc_rows[ei] |= 1u << ej;
        }
      }
    }
  }
  return s;
}

// One fully chosen candidate execution.
struct Candidate {
  // rf[k]: source write event of read s.reads[k], -1 = initial value.
  std::vector<int> rf;
  // co[v]: the coherence order of var v's writes (event ids, first = oldest).
  std::vector<std::vector<int>> co;
};

// Communication edges (rf, co chain, fr via immediate co successors) added to
// `g`.  Using only immediate co successors is equivalent for acyclicity since
// full co/fr are contained in the transitive closure of the chain form.
void add_com_edges(EdgeGraph& g, const CandidateSpace& s, const Candidate& c,
                   bool include_fr) {
  for (const std::vector<int>& chain : c.co) {
    for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
      g.add(chain[k], chain[k + 1]);
    }
  }
  for (std::size_t k = 0; k < s.reads.size(); ++k) {
    const int r = s.reads[k];
    const int w = c.rf[k];
    if (w >= 0) g.add(w, r);
    if (!include_fr) continue;
    const std::vector<int>& chain =
        c.co[static_cast<std::size_t>(s.events[static_cast<std::size_t>(r)].var)];
    if (w < 0) {
      // Read of the initial value precedes every write to the location.
      if (!chain.empty()) g.add(r, chain.front());
    } else {
      const auto it = std::find(chain.begin(), chain.end(), w);
      if (it != chain.end() && it + 1 != chain.end()) g.add(r, *(it + 1));
    }
  }
}

Outcome outcome_of(const CandidateSpace& s, const Candidate& c) {
  Outcome out(static_cast<std::size_t>(s.test->num_regs), 0);
  for (std::size_t k = 0; k < s.reads.size(); ++k) {
    const AxEvent& r = s.events[static_cast<std::size_t>(s.reads[k])];
    if (r.reg < 0) continue;
    out[static_cast<std::size_t>(r.reg)] =
        c.rf[k] < 0 ? 0 : s.events[static_cast<std::size_t>(c.rf[k])].value;
  }
  for (int v = 0; v < s.test->num_vars; ++v) {
    const std::vector<int>& chain = c.co[static_cast<std::size_t>(v)];
    out.push_back(chain.empty()
                      ? 0
                      : s.events[static_cast<std::size_t>(chain.back())].value);
  }
  return out;
}

// Does this candidate satisfy the architecture's axioms?
bool candidate_allowed(const CandidateSpace& s, const Candidate& c, Arch arch) {
  EdgeGraph g(s.events.size());
  if (allows_early_forwarding(arch)) {
    // POWER envelope: COHERENCE + CAUSALITY (see axiomatic.h).
    g.reset(s.poloc_rows);
    add_com_edges(g, s, c, /*include_fr=*/true);
    if (!g.acyclic()) return false;
    g.reset(s.ppo_rows);
    add_com_edges(g, s, c, /*include_fr=*/false);
    return g.acyclic();
  }
  // Multi-copy-atomic architectures: acyclic(ppo ∪ rf ∪ co ∪ fr), exact.
  g.reset(s.ppo_rows);
  add_com_edges(g, s, c, /*include_fr=*/true);
  return g.acyclic();
}

// Enumerate every (rf, co) candidate, calling `visit(c)`; `visit` returns
// true to stop early.
template <typename Visit>
void for_each_candidate(const CandidateSpace& s, const Visit& visit) {
  Candidate c;
  c.rf.assign(s.reads.size(), -1);
  c.co.resize(s.writes_by_var.size());

  // Odometer over per-variable coherence permutations.
  std::vector<std::vector<int>> perms = s.writes_by_var;
  for (auto& p : perms) std::sort(p.begin(), p.end());

  const std::size_t nvars = perms.size();
  // Recursive enumeration: vars (permutations), then reads (rf choices).
  struct Enumerator {
    const CandidateSpace& s;
    Candidate& c;
    const Visit& visit;
    bool stopped = false;

    void rf_level(std::size_t k) {
      if (stopped) return;
      if (k == s.reads.size()) {
        stopped = visit(c);
        return;
      }
      for (int cand : s.rf_candidates[k]) {
        c.rf[k] = cand;
        rf_level(k + 1);
        if (stopped) return;
      }
    }
  };

  Enumerator en{s, c, visit};
  std::vector<std::vector<int>> perm = perms;
  // Iterate the cartesian product of per-variable permutations.
  std::size_t v = 0;
  // Initialise all chains to the first permutation.
  for (std::size_t i = 0; i < nvars; ++i) c.co[i] = perm[i];
  while (true) {
    en.rf_level(0);
    if (en.stopped) return;
    // Advance the permutation odometer.
    for (v = 0; v < nvars; ++v) {
      if (std::next_permutation(perm[v].begin(), perm[v].end())) {
        c.co[v] = perm[v];
        break;
      }
      // Wrapped: std::next_permutation left it sorted (first permutation).
      c.co[v] = perm[v];
    }
    if (v == nvars) return;
  }
}

}  // namespace

bool axiomatic_ppo(const LitmusThread& thread, std::size_t i, std::size_t j,
                   Arch arch, const AxiomaticOptions& options) {
  if (i >= j || j >= thread.instrs.size()) return false;
  if (!ax_is_access(thread.instrs[i]) || !ax_is_access(thread.instrs[j])) {
    return false;
  }
  return ppo_pair(thread, i, j, arch, options);
}

// The batch entry points are the zero-slot special case of the incremental
// evaluator, so the two share every code path and cannot drift apart.
std::set<Outcome> axiomatic_outcomes(const LitmusTest& test, Arch arch,
                                     const AxiomaticOptions& options) {
  AxiomaticEvaluator ev(test, arch, {}, options);
  return ev.outcomes();
}

bool axiomatic_allowed(const LitmusTest& test, const Outcome& outcome,
                       Arch arch, const AxiomaticOptions& options) {
  AxiomaticEvaluator ev(test, arch, {}, options);
  return ev.allowed(outcome);
}

struct AxiomaticEvaluator::Impl {
  LitmusTest test;  // mutable copy: set_assignment rewrites fence slots
  Arch arch;
  AxiomaticOptions opt;
  std::vector<FenceSlotRef> slots;
  CandidateSpace space;  // space.test points at `test` above

  Impl(const LitmusTest& skeleton, Arch a, std::vector<FenceSlotRef> sl,
       const AxiomaticOptions& options)
      : test(skeleton), arch(a), opt(options), slots(std::move(sl)) {
    for (const FenceSlotRef& slot : slots) {
      const auto t = static_cast<std::size_t>(slot.tid);
      const auto i = static_cast<std::size_t>(slot.idx);
      if (t >= test.threads.size() || i >= test.threads[t].instrs.size() ||
          test.threads[t].instrs[i].type != AccessType::Fence) {
        throw std::invalid_argument("fence slot does not name a fence");
      }
    }
    space = build_space(test, arch, opt);
  }
};

AxiomaticEvaluator::AxiomaticEvaluator(const LitmusTest& skeleton, Arch arch,
                                       std::vector<FenceSlotRef> slots,
                                       const AxiomaticOptions& options)
    : impl_(std::make_unique<Impl>(skeleton, arch, std::move(slots), options)) {}

AxiomaticEvaluator::~AxiomaticEvaluator() = default;
AxiomaticEvaluator::AxiomaticEvaluator(AxiomaticEvaluator&&) noexcept = default;
AxiomaticEvaluator& AxiomaticEvaluator::operator=(AxiomaticEvaluator&&) noexcept =
    default;

void AxiomaticEvaluator::set_assignment(const std::vector<FenceKind>& kinds) {
  Impl& im = *impl_;
  if (kinds.size() != im.slots.size()) {
    throw std::invalid_argument("assignment size does not match slot count");
  }
  // Fences are not candidate events, so the event space and the rf/po-loc
  // relations are invariant; only the ppo rows of threads whose fence kinds
  // actually changed need recomputing.
  std::vector<bool> dirty(im.test.threads.size(), false);
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    LitmusInstr& in =
        im.test.threads[static_cast<std::size_t>(im.slots[k].tid)]
            .instrs[static_cast<std::size_t>(im.slots[k].idx)];
    if (in.fence == kinds[k]) continue;
    in.fence = kinds[k];
    dirty[static_cast<std::size_t>(im.slots[k].tid)] = true;
  }
  for (std::size_t t = 0; t < dirty.size(); ++t) {
    if (dirty[t]) compute_ppo_rows(im.space, t, im.arch, im.opt);
  }
}

std::set<Outcome> AxiomaticEvaluator::outcomes() const {
  WMM_PROFILE_SPAN(obs::Phase::AxCheck);
  const Impl& im = *impl_;
  std::set<Outcome> out;
  for_each_candidate(im.space, [&](const Candidate& c) {
    if (candidate_allowed(im.space, c, im.arch)) {
      out.insert(outcome_of(im.space, c));
    }
    return false;
  });
  return out;
}

bool AxiomaticEvaluator::allowed(const Outcome& outcome) const {
  const Impl& im = *impl_;
  bool found = false;
  for_each_candidate(im.space, [&](const Candidate& c) {
    if (candidate_allowed(im.space, c, im.arch) &&
        outcome_of(im.space, c) == outcome) {
      found = true;
      return true;
    }
    return false;
  });
  return found;
}

}  // namespace wmm::sim
