// The paper's section 4.3.1 study end-to-end: should the Linux kernel give
// read_barrier_depends a real instruction sequence on ARMv8, and if so,
// which one?
#include <iostream>

#include "core/harness.h"
#include "core/report.h"
#include "sim/calibrate.h"
#include "workloads/kernel_workloads.h"

using namespace wmm;

int main() {
  constexpr sim::Arch kArch = sim::Arch::ARMV8;
  kernel::KernelConfig base;
  base.arch = kArch;

  // Sensitivity of each candidate benchmark to the rbd code path.
  const core::CostFunctionCalibration cal =
      sim::calibrate_cost_function(sim::params_for(kArch), 9, /*spill=*/true);
  std::cout << "sensitivity to read_barrier_depends:\n\n";
  core::Table fits({"benchmark", "k", "+/-"});
  std::vector<std::pair<std::string, double>> ks;
  for (const std::string& name : workloads::rbd_benchmark_names()) {
    const core::SweepResult sweep = core::sweep_sensitivity(
        name, "rbd", [&](std::uint32_t iters) {
          kernel::KernelConfig c = base;
          if (iters > 0) {
            c.injection_for(kernel::KMacro::ReadBarrierDepends) =
                core::Injection::cost_function(iters, true);
          }
          return workloads::make_kernel_benchmark(name, c);
        },
        core::standard_sweep_sizes(9),
        [&](std::uint32_t iters) { return cal.ns_for(iters); });
    fits.add_row({name, core::fmt_fixed(sweep.fit.k, 5),
                  core::fmt_percent(sweep.fit.relative_error(), 0)});
    ks.emplace_back(name, sweep.fit.k);
  }
  fits.print(std::cout);

  // Evaluate each candidate instruction sequence and price it via eq. 2.
  std::cout << "\nstrategy comparison (relative performance / implied ns):\n\n";
  core::Table table({"strategy", "netperf_udp", "lmbench", "osm_stack_avg"});
  for (kernel::RbdStrategy s : kernel::kAllRbdStrategies) {
    if (s == kernel::RbdStrategy::BaseNop) continue;
    std::vector<std::string> row{kernel::rbd_strategy_name(s)};
    for (const std::string& name :
         {std::string("netperf_udp"), std::string("lmbench"),
          std::string("osm_stack_avg")}) {
      kernel::KernelConfig c = base;
      c.rbd = s;
      const core::Comparison cmp = core::compare_configurations(
          [&] { return workloads::make_kernel_benchmark(name, base); },
          [&] { return workloads::make_kernel_benchmark(name, c); });
      double k = 0.0;
      for (const auto& [n, kv] : ks) {
        if (n == name) k = kv;
      }
      row.push_back(core::fmt_fixed(cmp.value, 4) + " / " +
                    core::fmt_fixed(core::cost_of_change(cmp.value, k), 1) +
                    "ns");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nconclusion (as the paper finds): isb's pipeline flush makes\n"
               "ctrl+isb unreasonable; if ordering is required, dmb ishld or\n"
               "dmb ish are the best cases.\n";
  return 0;
}
