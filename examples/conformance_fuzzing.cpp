// Differential conformance fuzzing, end to end: generate a random litmus
// program from a seed, compare the operational executor against the
// independent axiomatic oracle, run a small corpus on every architecture,
// and demonstrate the oracle's teeth by weakening one axiom and watching the
// fuzzer catch it with a shrunk, replayable counterexample.
#include <iostream>

#include "sim/fuzz.h"
#include "sim/memory_model.h"

using namespace wmm;

int main() {
  // Step 1: one seeded program, both semantics side by side.
  std::cout << "step 1: one random program, operational vs axiomatic\n\n";
  const std::uint64_t seed = 0x5eedULL;
  const sim::LitmusTest program =
      sim::generate_litmus(seed, sim::FuzzConfig::for_arch(sim::Arch::ARMV8));
  std::cout << sim::format_litmus(program) << "\n";
  for (sim::Arch arch : {sim::Arch::SC, sim::Arch::X86_TSO, sim::Arch::ARMV8}) {
    const auto operational = sim::enumerate_outcomes(program, arch);
    const auto axiomatic = sim::axiomatic_outcomes(program, arch);
    std::cout << "  " << sim::arch_name(arch) << ": " << operational.size()
              << " operational outcomes, " << axiomatic.size()
              << " axiomatic outcomes"
              << (operational == axiomatic ? " (equal)" : " (DIVERGENT!)")
              << "\n";
  }

  // Step 2: a small fixed-seed corpus on every architecture.
  std::cout << "\nstep 2: 200-program corpora (seed 0xc0ffee)\n\n";
  for (sim::Arch arch : {sim::Arch::SC, sim::Arch::X86_TSO, sim::Arch::ARMV8,
                         sim::Arch::POWER7}) {
    const sim::FuzzReport report =
        sim::run_conformance_corpus(arch, 0xc0ffee, 200);
    std::cout << "  " << sim::arch_name(arch) << ": " << report.programs
              << " programs, " << report.outcomes_checked
              << " outcomes cross-checked, "
              << (report.ok() ? "all conform" : "DIVERGENCE") << "\n";
  }

  // Step 3: teeth.  Drop TSO's mfence-restored store->load order from the
  // axioms; the differential fuzzer must now find a counterexample (the
  // classic SB+mfence shape) and shrink it.
  std::cout << "\nstep 3: weakened oracle (mfence no longer orders W->R)\n\n";
  sim::AxiomaticOptions weakened;
  weakened.drop_tso_store_load_fence = true;
  const sim::FuzzReport caught = sim::run_conformance_corpus(
      sim::Arch::X86_TSO, 0xc0ffee, 2000,
      sim::FuzzConfig::for_arch(sim::Arch::X86_TSO), weakened);
  if (caught.ok()) {
    std::cout << "  weakening NOT caught — oracle has lost its teeth\n";
    return 1;
  }
  std::cout << caught.divergences.front().report() << "\n";
  return 0;
}
