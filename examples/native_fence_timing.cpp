// Run the methodology's in-vitro leg on real hardware: time the host's
// fences through C++11 atomics with the same statistics pipeline (warm-ups,
// geometric mean, Student-t 95% confidence intervals) as the simulated
// experiments.
#include <iostream>

#include "core/report.h"
#include "native/fences.h"

int main() {
  using namespace wmm;
  std::cout << "host fence microbenchmarks (x86/TSO; the paper's footnote-1\n"
               "case: far fewer fencing choices than ARM/POWER)\n\n";

  core::Table table({"operation", "geomean ns/op", "95% CI", "min", "max"});
  double relaxed = 0.0;
  for (native::HostFence f : native::all_host_fences()) {
    const core::SampleSummary s = native::measure_host_fence(f);
    if (f == native::HostFence::None) relaxed = s.geomean;
    table.add_row({native::host_fence_name(f), core::fmt_fixed(s.geomean, 2),
                   "+/-" + core::fmt_fixed(s.ci95, 2),
                   core::fmt_fixed(s.min, 2), core::fmt_fixed(s.max, 2)});
  }
  table.print(std::cout);

  const core::SampleSummary seq =
      native::measure_host_fence(native::HostFence::SeqCstStore);
  std::cout << "\nfull-fence premium over relaxed: "
            << core::fmt_fixed(seq.geomean - relaxed, 2) << " ns/op ("
            << core::fmt_fixed(seq.geomean / relaxed, 1) << "x)\n";

  std::cout << "\nhost cost-function linearity (dependent spin loop):\n";
  for (std::uint32_t n : {1u, 16u, 64u, 256u, 1024u}) {
    std::cout << "  n=" << n << ": "
              << core::fmt_fixed(native::time_host_cost_loop_ns(n, 4096), 2)
              << " ns\n";
  }
  return 0;
}
