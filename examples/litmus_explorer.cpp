// Explore the weak-memory semantics of the simulated architectures: build a
// litmus test programmatically, enumerate its reachable outcomes on each
// architecture, and see which fences restore sequential consistency.
#include <iostream>

#include "sim/litmus.h"

using namespace wmm::sim;

namespace {

void show(const LitmusTest& test, const Outcome& interesting) {
  std::cout << test.name << ": relaxed outcome {";
  for (std::size_t i = 0; i < interesting.size(); ++i) {
    std::cout << (i ? "," : "") << interesting[i];
  }
  std::cout << "}\n";
  for (Arch arch : {Arch::SC, Arch::X86_TSO, Arch::ARMV8, Arch::POWER7}) {
    const auto outcomes = enumerate_outcomes(test, arch);
    std::cout << "  " << arch_name(arch) << ": " << outcomes.size()
              << " reachable outcomes, relaxed outcome "
              << (outcomes.count(interesting) ? "ALLOWED" : "forbidden")
              << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Classic shapes ===\n\n";
  for (const LitmusCase& c :
       {make_sb(), make_mp(), make_lb(), make_iriw(), make_wrc_dep()}) {
    show(c.test, c.relaxed_outcome);
  }

  std::cout << "=== Fixing message passing step by step ===\n\n";
  // MP with no ordering.
  show(make_mp().test, make_mp().relaxed_outcome);
  // Writer orders its stores; reader still free to reorder reads.
  show(make_mp_writer_fence_only(FenceKind::DmbIshSt).test,
       make_mp().relaxed_outcome);
  // A bare control dependency is NOT enough for a read (speculation).
  show(make_mp_ctrl().test, make_mp().relaxed_outcome);
  // ctrl+isb closes the speculation window.
  show(make_mp_ctrl_isb().test, make_mp().relaxed_outcome);
  // The clean modern answer: store-release / load-acquire.
  show(make_mp_acq_rel().test, make_mp().relaxed_outcome);

  std::cout << "=== A custom test: R-loop publication ===\n\n";
  // T0 publishes a value then a flag with a release store; T1 acquires.
  LitmusTest custom;
  custom.name = "custom-publication";
  custom.num_vars = 2;
  custom.num_regs = 2;
  LitmusInstr flag_store = LitmusInstr::write(1, 1);
  flag_store.release = true;
  LitmusInstr flag_load = LitmusInstr::read(0, 1);
  flag_load.acquire = true;
  custom.threads = {
      {{LitmusInstr::write(0, 7), flag_store}},
      {{flag_load, LitmusInstr::read(1, 0)}},
  };
  // Saw the flag but stale data? Must be forbidden everywhere.
  show(custom, {1, 0, 7, 1});
  return 0;
}
