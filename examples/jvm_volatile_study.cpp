// The paper's section 4.2 study end-to-end: which benchmarks are usable for
// evaluating JVM fencing changes, and what do ARMv8's load-acquire /
// store-release instructions buy over explicit barriers?
#include <iostream>

#include "core/harness.h"
#include "core/report.h"
#include "sim/calibrate.h"
#include "workloads/jvm_workloads.h"

using namespace wmm;

namespace {

core::SweepResult sweep_all_barriers(const std::string& name, sim::Arch arch) {
  const bool spill = arch != sim::Arch::ARMV8;
  const core::CostFunctionCalibration cal =
      sim::calibrate_cost_function(sim::params_for(arch), 8, spill);
  return core::sweep_sensitivity(
      name, "all", [&](std::uint32_t iters) {
        jvm::JvmConfig config;
        config.arch = arch;
        if (iters > 0) {
          for (jvm::Elemental e : jvm::kAllElementals) {
            config.injection_for(e) = core::Injection::cost_function(iters, spill);
          }
        }
        return workloads::make_jvm_benchmark(name, config);
      },
      core::standard_sweep_sizes(8),
      [&](std::uint32_t iters) { return cal.ns_for(iters); });
}

}  // namespace

int main() {
  // Step 1: establish which benchmarks are stable and sensitive enough to
  // evaluate fencing changes at all.
  std::cout << "step 1: benchmark selection via sensitivity fits (ARMv8)\n\n";
  core::Table selection({"benchmark", "k", "+/-", "usable?"});
  std::string best;
  double best_k = 0.0;
  for (const std::string& name : workloads::jvm_benchmark_names()) {
    const core::SweepResult sweep = sweep_all_barriers(name, sim::Arch::ARMV8);
    const bool usable = core::usable_for_evaluation(sweep.fit, 1e-3, 0.15);
    selection.add_row({name, core::fmt_fixed(sweep.fit.k, 5),
                       core::fmt_percent(sweep.fit.relative_error(), 0),
                       usable ? "yes" : "no"});
    if (usable && sweep.fit.k > best_k) {
      best_k = sweep.fit.k;
      best = name;
    }
  }
  selection.print(std::cout);
  std::cout << "\nmost sensitive usable benchmark: " << best << "\n\n";

  // Step 2: use the selected benchmark to evaluate the JDK9 acq/rel volatile
  // lowering against JDK8 explicit barriers, and the dmb-elision lock patch.
  std::cout << "step 2: strategy evaluation on " << best << " (ARMv8)\n\n";
  const auto compare = [&](const jvm::JvmConfig& a, const jvm::JvmConfig& b) {
    return core::compare_configurations(
        [&] { return workloads::make_jvm_benchmark(best, a); },
        [&] { return workloads::make_jvm_benchmark(best, b); });
  };

  jvm::JvmConfig barriers;
  barriers.arch = sim::Arch::ARMV8;
  jvm::JvmConfig acqrel = barriers;
  acqrel.mode = jvm::VolatileMode::AcquireRelease;

  const core::Comparison c1 = compare(barriers, acqrel);
  std::cout << "barriers -> acq/rel volatiles : "
            << core::fmt_percent(c1.value - 1.0) << " ("
            << (c1.significant() ? "significant" : "not significant") << ")\n";

  jvm::JvmConfig patched = acqrel;
  patched.elide_monitor_dmb = true;
  const core::Comparison c2 = compare(acqrel, patched);
  std::cout << "dmb-elision lock patch (acq/rel mode): "
            << core::fmt_percent(c2.value - 1.0) << "\n";

  jvm::JvmConfig patched_barriers = barriers;
  patched_barriers.elide_monitor_dmb = true;
  const core::Comparison c3 = compare(barriers, patched_barriers);
  std::cout << "dmb-elision lock patch (barriers mode): "
            << core::fmt_percent(c3.value - 1.0) << "\n";
  return 0;
}
