// Quickstart: measure how sensitive a benchmark is to a fencing code path,
// then put a price on a fencing-strategy change.
//
//   1. Calibrate the cost function (loop iterations -> nanoseconds).
//   2. Sweep the benchmark with growing cost functions injected into the
//      code path and fit the sensitivity k (paper eq. 1).
//   3. Apply a real strategy change, measure relative performance, and
//      recover the implied per-invocation cost via eq. 2.
#include <iostream>

#include "core/harness.h"
#include "core/report.h"
#include "sim/calibrate.h"
#include "workloads/jvm_workloads.h"

int main() {
  using namespace wmm;

  // The platform under study: the simulated Hotspot JVM on ARMv8, running
  // the spark (PageRank) workload.
  constexpr sim::Arch kArch = sim::Arch::ARMV8;

  // 1. Calibrate: how long does a cost function of N loop iterations take?
  //    (OpenJDK on ARMv8 has a scratch register, so no stack spill.)
  const core::CostFunctionCalibration cal =
      sim::calibrate_cost_function(sim::params_for(kArch), 8, /*spill=*/false);
  std::cout << "cost function: 1 iter = " << core::fmt_fixed(cal.ns_for(1), 2)
            << " ns, 256 iters = " << core::fmt_fixed(cal.ns_for(256), 2)
            << " ns\n";

  // 2. Sweep: inject the cost function into the StoreStore barrier code path
  //    and fit the sensitivity model p = 1 / ((1-k) + k*a).
  const auto factory = [&](std::uint32_t iters) {
    jvm::JvmConfig config;
    config.arch = kArch;
    if (iters > 0) {
      config.injection_for(jvm::Elemental::StoreStore) =
          core::Injection::cost_function(iters, /*spill=*/false);
    }
    return workloads::make_jvm_benchmark("spark", config);
  };
  const core::SweepResult sweep = core::sweep_sensitivity(
      "spark", "StoreStore", factory, core::standard_sweep_sizes(8),
      [&](std::uint32_t iters) { return cal.ns_for(iters); });
  std::cout << "sensitivity fit: " << core::fmt_fit(sweep.fit) << "\n";
  if (!core::usable_for_evaluation(sweep.fit)) {
    std::cout << "warning: this benchmark is not well suited to evaluating "
                 "this code path\n";
  }

  // 3. Price a change: lower StoreStore to a full dmb ish instead of
  //    dmb ishst and recover the implied per-invocation cost.
  jvm::JvmConfig base;
  base.arch = kArch;
  jvm::JvmConfig test = base;
  test.storestore_override = sim::FenceKind::DmbIsh;
  const core::Comparison cmp = core::compare_configurations(
      [&] { return workloads::make_jvm_benchmark("spark", base); },
      [&] { return workloads::make_jvm_benchmark("spark", test); });

  std::cout << "dmb ishst -> dmb ish: relative performance "
            << core::fmt_fixed(cmp.value, 4) << " ("
            << core::fmt_percent(cmp.value - 1.0) << ", "
            << (cmp.significant() ? "significant" : "not significant") << ")\n";
  std::cout << "implied cost of the change: "
            << core::fmt_fixed(core::cost_of_change(cmp.value, sweep.fit.k), 2)
            << " ns per barrier\n";
  std::cout << "(in vitro the two instructions are indistinguishable: "
            << core::fmt_fixed(
                   sim::fence_time_ns(sim::params_for(kArch), sim::FenceKind::DmbIsh), 1)
            << " vs "
            << core::fmt_fixed(
                   sim::fence_time_ns(sim::params_for(kArch), sim::FenceKind::DmbIshSt), 1)
            << " ns)\n";
  return 0;
}
