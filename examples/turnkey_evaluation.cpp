// The "turnkey evaluation system" the paper's conclusion envisions: one call
// that calibrates, sweeps, fits, gates on usability, and prices a set of
// candidate fencing strategies for a code path.
#include <iostream>

#include "core/report.h"
#include "core/turnkey.h"
#include "sim/calibrate.h"
#include "workloads/kernel_workloads.h"

int main() {
  using namespace wmm;

  constexpr sim::Arch kArch = sim::Arch::ARMV8;
  const std::string benchmark = "netperf_udp";
  const core::CostFunctionCalibration cal =
      sim::calibrate_cost_function(sim::params_for(kArch), 8, /*spill=*/true);

  // The benchmark family with a cost function in read_barrier_depends.
  const auto injected = [&](std::uint32_t iters) {
    kernel::KernelConfig c;
    c.arch = kArch;
    if (iters > 0) {
      c.injection_for(kernel::KMacro::ReadBarrierDepends) =
          core::Injection::cost_function(iters, true);
    }
    return workloads::make_kernel_benchmark(benchmark, c);
  };

  // Candidate strategies to price.
  std::vector<core::StrategyCandidate> candidates;
  for (kernel::RbdStrategy s : kernel::kAllRbdStrategies) {
    if (s == kernel::RbdStrategy::BaseNop) continue;
    candidates.push_back({kernel::rbd_strategy_name(s), [s, benchmark] {
                            kernel::KernelConfig c;
                            c.arch = kArch;
                            c.rbd = s;
                            return workloads::make_kernel_benchmark(benchmark, c);
                          }});
  }

  const core::TurnkeyReport report = core::evaluate_code_path(
      benchmark, "read_barrier_depends", injected,
      [&](std::uint32_t iters) { return cal.ns_for(iters); }, candidates);

  std::cout << "turnkey evaluation: " << benchmark
            << " / read_barrier_depends\n\n";
  std::cout << "fit: " << core::fmt_fit(report.sweep.fit) << " — benchmark "
            << (report.benchmark_usable ? "USABLE" : "NOT USABLE")
            << " for this code path\n\n";

  core::Table table({"strategy", "rel perf", "implied cost", "significant"});
  for (const core::PricedStrategy& s : report.strategies) {
    table.add_row({s.name, core::fmt_fixed(s.comparison.value, 4),
                   core::fmt_fixed(s.implied_cost_ns, 1) + " ns",
                   s.comparison.significant() ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nrecommended (cheapest real ordering): " << report.recommended
            << "\n";
  return 0;
}
